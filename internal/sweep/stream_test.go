package sweep

import (
	"reflect"
	"testing"

	"philly/internal/core"
)

// TestStreamReducerMatchesBatchReduce runs the same study twice — once
// retained and batch-reduced, once streamed — and requires bit-identical
// ReplicaMetrics, plus confirms streaming actually released the per-job
// attempt records.
func TestStreamReducerMatchesBatchReduce(t *testing.T) {
	cfg := core.SmallConfig()
	cfg.Seed = 31
	cfg.Workload.TotalJobs = 400
	cfg.Workload.Duration /= 4

	batchStudy, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	batchRes, err := batchStudy.Run()
	if err != nil {
		t.Fatal(err)
	}
	batch := Reduce(batchRes)

	streamStudy, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	red := NewStreamReducer(streamStudy.NumJobs())
	streamed := 0
	streamStudy.StreamJobs(func(i int, r *core.JobResult) {
		streamed++
		if !r.Completed {
			t.Errorf("streamed job %d not completed", i)
		}
		if len(r.Attempts) == 0 {
			t.Errorf("streamed job %d has no attempt records", i)
		}
		red.ObserveJob(i, r)
	})
	streamRes, err := streamStudy.Run()
	if err != nil {
		t.Fatal(err)
	}
	stream := red.Finish(streamRes)

	if !reflect.DeepEqual(batch, stream) {
		t.Fatalf("stream metrics differ from batch:\nbatch:  %+v\nstream: %+v", batch, stream)
	}
	if streamed == 0 {
		t.Fatal("no jobs were streamed")
	}
	trimmed := 0
	for i := range streamRes.Jobs {
		j := &streamRes.Jobs[i]
		if j.Completed && j.Attempts == nil && j.Convergence == nil {
			trimmed++
		}
	}
	if trimmed != streamed {
		t.Errorf("trimmed %d completed jobs, want %d (every streamed job released)", trimmed, streamed)
	}
	// The scalar fields must survive trimming.
	for i := range streamRes.Jobs {
		a, b := &batchRes.Jobs[i], &streamRes.Jobs[i]
		if a.GPUMinutes != b.GPUMinutes || a.EndAt != b.EndAt || a.Retries != b.Retries {
			t.Fatalf("job %d scalar fields diverged after streaming", i)
		}
	}
}
