package sweep

import (
	"philly/internal/core"
	"philly/internal/failures"
	"philly/internal/stats"
)

// ReplicaMetrics is the scalar reduction of one study run. The runner keeps
// these instead of whole StudyResults so a wide sweep stays memory-bounded,
// and every field is a pure function of the run — no wall-clock, no worker
// identity — so aggregated output is bit-identical across worker counts.
type ReplicaMetrics struct {
	// Seed is the derived per-run seed (recorded for reproducing one cell).
	Seed uint64
	// Jobs and Completed count generated and horizon-completed jobs.
	Jobs, Completed int
	// JCTp50 and JCTMean summarize completed jobs' completion times
	// (submit to end, minutes).
	JCTp50, JCTMean float64
	// DelayP50 and DelayP95 summarize first-episode queueing delay
	// (minutes), the paper's §3.1 metric.
	DelayP50, DelayP95 float64
	// MeanUtilPct is the cluster-wide mean per-minute GPU utilization.
	MeanUtilPct float64
	// Preemptions sums fair-share and policy preemptions; Migrations
	// counts defragmentation moves.
	Preemptions, Migrations int
	// GPUHours is total GPU time charged; FailedGPUHours the share burnt
	// on failed attempts (the Table 7 waste metric).
	GPUHours, FailedGPUHours float64
	// UnsuccessfulPct is the fraction of completed jobs that exhausted
	// retries, in percent.
	UnsuccessfulPct float64
	// LostGPUHours is GPU time destroyed by infrastructure-outage kills
	// (work since the victims' last checkpoints); CkptOverheadPct is the
	// share of GPU time spent writing/restoring checkpoints, in percent.
	// Both 0 when faults / the checkpoint cost model are off.
	LostGPUHours    float64
	CkptOverheadPct float64
	// ETTFHours / ETTRHours are the realized mean time between outage
	// events and mean outage duration, in hours (0 without outages).
	ETTFHours, ETTRHours float64
	// ImbalancePct is the cross-member utilization spread of a federated
	// run's fleet row (max member mean util minus min, in percentage
	// points); 0 for plain studies and individual member rows.
	ImbalancePct float64
	// Placement-search telemetry (PR 9): total searches, negative-result
	// cache short-circuits, and speculative commits/conflicts. Exported per
	// replica but not aggregated into table columns.
	PlacementSearches    int
	CacheShortCircuits   int
	SpeculativeCommits   int
	SpeculativeConflicts int
}

// Reduce computes a replica's metrics from its study result. It is the
// batch form of StreamReducer — observing every job in index order and
// finishing produces, by construction, the exact floating-point fold the
// original single-pass reduction performed.
func Reduce(res *core.StudyResult) ReplicaMetrics {
	r := NewStreamReducer(len(res.Jobs))
	for i := range res.Jobs {
		r.ObserveJob(i, &res.Jobs[i])
	}
	return r.Finish(res)
}

// jobAccum is the per-job scalar extraction StreamReducer keeps in place of
// the full JobResult. It is a few dozen bytes regardless of how many
// attempts or log-derived records the job accumulated.
type jobAccum struct {
	seen      bool
	completed bool
	unsucc    bool
	// offloaded marks a federation spillover bookkeeping shell: the job
	// moved to (and is counted at) another member, so it is excluded from
	// this study's totals — consistent with the fleet-wide fold and the
	// analysis fleet table.
	offloaded bool
	// evacuated marks a checkpoint-migration donor shell: the GPU time it
	// burned stays in this study's totals, but the job itself completes at
	// (and is counted by) the receiving member.
	evacuated bool
	gpuMin    float64
	lostGPUh  float64
	ckptGPUh  float64
	jctMin    float64
	delayMin  float64
	// failedGPUh lists the per-failed-attempt GPU-hour costs in attempt
	// order. They are folded into the metric sum in exactly that order at
	// Finish, so the result is bit-identical to summing while scanning the
	// full attempt records.
	failedGPUh []float64
}

// StreamReducer reduces a study to ReplicaMetrics incrementally: register
// ObserveJob with core.Study.StreamJobs and each completed job's record is
// folded to scalars the moment it finishes, letting the study release the
// full per-job records in flight. Finish picks up jobs that never completed
// (their records are still intact in the StudyResult) and produces metrics
// bit-identical to Reduce over a fully retained result.
type StreamReducer struct {
	jobs []jobAccum
}

// NewStreamReducer sizes a reducer for a study of n jobs.
func NewStreamReducer(n int) *StreamReducer {
	return &StreamReducer{jobs: make([]jobAccum, n)}
}

// ObserveJob folds one job's result; i is the job's index in
// StudyResult.Jobs. Safe to call from core's StreamJobs observer.
func (r *StreamReducer) ObserveJob(i int, j *core.JobResult) {
	for i >= len(r.jobs) {
		// Federation spillover can inject jobs beyond the generated count;
		// grow rather than index out of range.
		r.jobs = append(r.jobs, jobAccum{})
	}
	a := &r.jobs[i]
	a.seen = true
	if j.Offloaded {
		a.offloaded = true
		return
	}
	a.evacuated = j.Evacuated
	a.completed = j.Completed
	a.gpuMin = j.GPUMinutes
	a.lostGPUh = j.LostGPUMinutes / 60
	a.ckptGPUh = j.CkptGPUMinutes / 60
	for _, att := range j.Attempts {
		if att.Failed {
			a.failedGPUh = append(a.failedGPUh, att.RuntimeMinutes*float64(j.Spec.GPUs)/60)
		}
	}
	if j.Completed {
		a.jctMin = (j.EndAt - j.Spec.SubmitAt).Minutes()
		a.delayMin = j.FirstQueueDelay.Minutes()
		a.unsucc = j.Outcome == failures.Unsuccessful
	}
}

// accumFor returns job i's accumulator, folding it from the retained
// record first if the streaming observer never saw it (jobs that missed
// the horizon keep their full records in the StudyResult).
func (r *StreamReducer) accumFor(i int, j *core.JobResult) *jobAccum {
	if i >= len(r.jobs) || !r.jobs[i].seen {
		r.ObserveJob(i, j)
	}
	return &r.jobs[i]
}

// Finish folds the per-job accumulators (in job order) plus the study-level
// aggregates into the replica metrics. Jobs never observed — those that did
// not complete before the horizon — are extracted from res.Jobs, where their
// records are still whole.
func (r *StreamReducer) Finish(res *core.StudyResult) ReplicaMetrics {
	m := ReplicaMetrics{
		Seed: res.Config.Seed,
		Jobs: len(res.Jobs),
	}
	var jct, delay []float64
	unsuccessful := 0
	ckptGPUh := 0.0
	// res.Jobs can outgrow the reducer's initial sizing (federation
	// spillover injects jobs beyond the generated count), so walk the
	// result, not the accumulator — ObserveJob grows it on demand.
	for i := 0; i < len(res.Jobs); i++ {
		a := r.accumFor(i, &res.Jobs[i])
		if a.offloaded {
			// Spillover shell: the job runs, and is counted, at another
			// federation member.
			m.Jobs--
			continue
		}
		m.GPUHours += a.gpuMin / 60
		m.LostGPUHours += a.lostGPUh
		ckptGPUh += a.ckptGPUh
		for _, f := range a.failedGPUh {
			m.FailedGPUHours += f
		}
		if a.evacuated {
			// Evacuation donor shell: GPU time stays here, the job itself
			// completes at (and is counted by) the receiving member.
			m.Jobs--
			continue
		}
		if !a.completed {
			continue
		}
		m.Completed++
		jct = append(jct, a.jctMin)
		delay = append(delay, a.delayMin)
		if a.unsucc {
			unsuccessful++
		}
	}
	m.JCTp50 = stats.Percentile(jct, 50)
	m.JCTMean = stats.Mean(jct)
	m.DelayP50 = stats.Percentile(delay, 50)
	m.DelayP95 = stats.Percentile(delay, 95)
	m.MeanUtilPct = res.Telemetry.All().Mean()
	m.Preemptions = res.Sched.FairSharePreemptions + res.Sched.PolicyPreemptions
	m.Migrations = res.Sched.Migrations
	m.PlacementSearches = res.Sched.PlacementSearches
	m.CacheShortCircuits = res.Sched.CacheShortCircuits
	m.SpeculativeCommits = res.Sched.SpeculativeCommits
	m.SpeculativeConflicts = res.Sched.SpeculativeConflicts
	if m.Completed > 0 {
		m.UnsuccessfulPct = 100 * float64(unsuccessful) / float64(m.Completed)
	}
	if m.GPUHours > 0 {
		m.CkptOverheadPct = 100 * ckptGPUh / m.GPUHours
	}
	m.ETTFHours = res.Outages.ETTFHours
	m.ETTRHours = res.Outages.ETTRHours
	return m
}

// MetricDef names one scalar column of the comparison table.
type MetricDef struct {
	// Name heads the table column.
	Name string
	// Get extracts the metric from a replica.
	Get func(ReplicaMetrics) float64
}

// Metrics is the default comparison-table column set, in render order.
func Metrics() []MetricDef {
	return []MetricDef{
		{"JCT p50 (min)", func(m ReplicaMetrics) float64 { return m.JCTp50 }},
		{"JCT mean (min)", func(m ReplicaMetrics) float64 { return m.JCTMean }},
		{"delay p50 (min)", func(m ReplicaMetrics) float64 { return m.DelayP50 }},
		{"delay p95 (min)", func(m ReplicaMetrics) float64 { return m.DelayP95 }},
		{"util %", func(m ReplicaMetrics) float64 { return m.MeanUtilPct }},
		{"preempts", func(m ReplicaMetrics) float64 { return float64(m.Preemptions) }},
		{"failed GPU-h", func(m ReplicaMetrics) float64 { return m.FailedGPUHours }},
		{"unsucc %", func(m ReplicaMetrics) float64 { return m.UnsuccessfulPct }},
		{"lost GPU-h", func(m ReplicaMetrics) float64 { return m.LostGPUHours }},
		{"ckpt ovh %", func(m ReplicaMetrics) float64 { return m.CkptOverheadPct }},
		{"ETTF (h)", func(m ReplicaMetrics) float64 { return m.ETTFHours }},
		{"ETTR (h)", func(m ReplicaMetrics) float64 { return m.ETTRHours }},
		{"imbalance pp", func(m ReplicaMetrics) float64 { return m.ImbalancePct }},
	}
}
