package sweep

import (
	"philly/internal/core"
	"philly/internal/failures"
	"philly/internal/stats"
)

// ReplicaMetrics is the scalar reduction of one study run. The runner keeps
// these instead of whole StudyResults so a wide sweep stays memory-bounded,
// and every field is a pure function of the run — no wall-clock, no worker
// identity — so aggregated output is bit-identical across worker counts.
type ReplicaMetrics struct {
	// Seed is the derived per-run seed (recorded for reproducing one cell).
	Seed uint64
	// Jobs and Completed count generated and horizon-completed jobs.
	Jobs, Completed int
	// JCTp50 and JCTMean summarize completed jobs' completion times
	// (submit to end, minutes).
	JCTp50, JCTMean float64
	// DelayP50 and DelayP95 summarize first-episode queueing delay
	// (minutes), the paper's §3.1 metric.
	DelayP50, DelayP95 float64
	// MeanUtilPct is the cluster-wide mean per-minute GPU utilization.
	MeanUtilPct float64
	// Preemptions sums fair-share and policy preemptions; Migrations
	// counts defragmentation moves.
	Preemptions, Migrations int
	// GPUHours is total GPU time charged; FailedGPUHours the share burnt
	// on failed attempts (the Table 7 waste metric).
	GPUHours, FailedGPUHours float64
	// UnsuccessfulPct is the fraction of completed jobs that exhausted
	// retries, in percent.
	UnsuccessfulPct float64
}

// Reduce computes a replica's metrics from its study result.
func Reduce(res *core.StudyResult) ReplicaMetrics {
	m := ReplicaMetrics{
		Seed: res.Config.Seed,
		Jobs: len(res.Jobs),
	}
	var jct, delay []float64
	unsuccessful := 0
	for i := range res.Jobs {
		j := &res.Jobs[i]
		m.GPUHours += j.GPUMinutes / 60
		for _, a := range j.Attempts {
			if a.Failed {
				m.FailedGPUHours += a.RuntimeMinutes * float64(j.Spec.GPUs) / 60
			}
		}
		if !j.Completed {
			continue
		}
		m.Completed++
		jct = append(jct, (j.EndAt - j.Spec.SubmitAt).Minutes())
		delay = append(delay, j.FirstQueueDelay.Minutes())
		if j.Outcome == failures.Unsuccessful {
			unsuccessful++
		}
	}
	m.JCTp50 = stats.Percentile(jct, 50)
	m.JCTMean = stats.Mean(jct)
	m.DelayP50 = stats.Percentile(delay, 50)
	m.DelayP95 = stats.Percentile(delay, 95)
	m.MeanUtilPct = res.Telemetry.All().Mean()
	m.Preemptions = res.Sched.FairSharePreemptions + res.Sched.PolicyPreemptions
	m.Migrations = res.Sched.Migrations
	if m.Completed > 0 {
		m.UnsuccessfulPct = 100 * float64(unsuccessful) / float64(m.Completed)
	}
	return m
}

// MetricDef names one scalar column of the comparison table.
type MetricDef struct {
	// Name heads the table column.
	Name string
	// Get extracts the metric from a replica.
	Get func(ReplicaMetrics) float64
}

// Metrics is the default comparison-table column set, in render order.
func Metrics() []MetricDef {
	return []MetricDef{
		{"JCT p50 (min)", func(m ReplicaMetrics) float64 { return m.JCTp50 }},
		{"JCT mean (min)", func(m ReplicaMetrics) float64 { return m.JCTMean }},
		{"delay p50 (min)", func(m ReplicaMetrics) float64 { return m.DelayP50 }},
		{"delay p95 (min)", func(m ReplicaMetrics) float64 { return m.DelayP95 }},
		{"util %", func(m ReplicaMetrics) float64 { return m.MeanUtilPct }},
		{"preempts", func(m ReplicaMetrics) float64 { return float64(m.Preemptions) }},
		{"failed GPU-h", func(m ReplicaMetrics) float64 { return m.FailedGPUHours }},
		{"unsucc %", func(m ReplicaMetrics) float64 { return m.UnsuccessfulPct }},
	}
}
