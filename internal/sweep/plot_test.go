package sweep

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"philly/internal/core"
)

// -update regenerates the golden plot files from the current renderers:
//
//	go test ./internal/sweep -run TestPlotGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden plot files")

// plotFixture builds a small, fully hand-specified sweep result: two axes
// (policy × failure scale), four scenarios, two replicas each, including a
// scenario with zero completed jobs whose percentile metrics are NaN — the
// case that must survive the JSON round-trip as null and render as empty
// CSV cells.
func plotFixture() *Result {
	mk := func(idx int, labels []string, ms ...ReplicaMetrics) ScenarioResult {
		name := "sched.policy=" + labels[0] + " failure.scale=" + labels[1]
		return ScenarioResult{
			Scenario: Scenario{
				Index:  idx,
				Name:   name,
				Labels: labels,
				Config: core.SmallConfig(),
			},
			Replicas: ms,
			Summary:  Summarize(ms),
		}
	}
	m := func(seed uint64, jct, delay, util float64, completed int) ReplicaMetrics {
		rm := ReplicaMetrics{
			Seed: seed, Jobs: 100, Completed: completed,
			JCTp50: jct, JCTMean: jct * 1.5,
			DelayP50: delay, DelayP95: delay * 4,
			MeanUtilPct: util, Preemptions: 3, Migrations: 1,
			GPUHours: 1234.5, FailedGPUHours: 56.25, UnsuccessfulPct: 12.5,
			LostGPUHours: 7.5, CkptOverheadPct: 1.25,
			ETTFHours: 9.5, ETTRHours: 0.75, ImbalancePct: 0.5,
		}
		if completed == 0 {
			rm.JCTp50, rm.JCTMean = math.NaN(), math.NaN()
			rm.DelayP50, rm.DelayP95 = math.NaN(), math.NaN()
			rm.UnsuccessfulPct = 0
			// Reliability columns take the same null path: a hand-tooled
			// export may carry NaN here, and it must survive as null in
			// JSON and an empty CSV cell.
			rm.ETTFHours, rm.ETTRHours = math.NaN(), math.NaN()
		}
		return rm
	}
	return &Result{
		AxisNames: []string{"sched.policy", "failure.scale"},
		Replicas:  2,
		BaseSeed:  7,
		Scenarios: []ScenarioResult{
			mk(0, []string{"philly", "1"}, m(11, 30, 2, 54.5, 97), m(12, 34, 3, 52.25, 96)),
			mk(1, []string{"philly", "2"}, m(13, 40, 5, 50, 95), m(14, 44, 6, 49.5, 93)),
			mk(2, []string{"fifo", "1"}, m(15, 55, 9, 51, 96), m(16, 61, 11, 50.75, 95)),
			mk(3, []string{"fifo", "2"}, m(17, math.NaN(), math.NaN(), 48, 0), m(18, math.NaN(), math.NaN(), 47, 0)),
		},
	}
}

// TestPlotGolden pins the full plot-hook round trip: Result → Export JSON
// (philly-sweep -o json) → DecodeJSON (philly-plot's reader) → CSV and
// Markdown renderers, compared byte-for-byte against the golden files. Any
// format change must be deliberate (-update) and shows up in review.
func TestPlotGolden(t *testing.T) {
	res := plotFixture()

	// Round-trip through the export exactly as the CLI pipeline does.
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		golden string
		write  func(*Result, *bytes.Buffer) error
	}{
		{"plot.csv", func(r *Result, b *bytes.Buffer) error { return r.WritePlotCSV(b) }},
		{"plot.md", func(r *Result, b *bytes.Buffer) error { return r.WritePlotMarkdown(b) }},
	} {
		var got bytes.Buffer
		if err := tc.write(decoded, &got); err != nil {
			t.Fatalf("%s: %v", tc.golden, err)
		}
		path := filepath.Join("testdata", tc.golden)
		if *updateGolden {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (run with -update to regenerate)", tc.golden, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("%s diverged from golden file (run with -update if intended)\ngot:\n%s\nwant:\n%s",
				tc.golden, got.String(), want)
		}
	}

	// The renderers must also agree between the original and the decoded
	// result — the export carries everything the plot hook consumes.
	var direct bytes.Buffer
	if err := res.WritePlotCSV(&direct); err != nil {
		t.Fatal(err)
	}
	var roundTripped bytes.Buffer
	if err := decoded.WritePlotCSV(&roundTripped); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct.Bytes(), roundTripped.Bytes()) {
		t.Error("CSV from decoded export differs from CSV from the original result")
	}
}

// TestPlotCSVFallsBackToScenarioColumn covers results without axis labels
// (e.g. an axis-less sweep): one opaque scenario column, still valid CSV.
func TestPlotCSVFallsBackToScenarioColumn(t *testing.T) {
	res := plotFixture()
	res.AxisNames = nil
	var buf bytes.Buffer
	if err := res.WritePlotCSV(&buf); err != nil {
		t.Fatal(err)
	}
	first, _, _ := bytes.Cut(buf.Bytes(), []byte("\n"))
	if want := "scenario,replicas,metric,mean,p50,p95,min,max,ci95"; string(first) != want {
		t.Fatalf("header = %q, want %q", first, want)
	}
}
