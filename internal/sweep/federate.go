package sweep

// Federated sweeps: a fleet.members axis turns every scenario into a
// multi-cluster study (internal/federation). Each member's configuration
// is its preset with every other axis's mutation applied on top — so
// "sched.policy=fifo fleet.members=philly-small+helios-like" runs FIFO on
// both members — and the result expands into one row per member plus a
// fleet-wide fold, under a synthetic trailing "member" axis, so the
// comparison table, JSON export and philly-plot compare policies
// per-member and fleet-wide without any special-casing downstream.

import (
	"fmt"

	"philly/internal/core"
	"philly/internal/failures"
	"philly/internal/federation"
	"philly/internal/par"
	"philly/internal/stats"
)

// fleetMemberLabel names the synthetic row carrying the fleet-wide fold.
const fleetMemberLabel = "fleet"

// federatedConfig resolves a federated scenario into a federation.Config:
// member presets with the scenario's non-fleet axis mutations applied, and
// per-member seeds derived from the run seed.
func federatedConfig(sc *Scenario, runSeed uint64) (federation.Config, error) {
	fcfg, err := federation.NewConfig(runSeed, sc.Fleet...)
	if err != nil {
		return federation.Config{}, err
	}
	for i := range fcfg.Members {
		for _, apply := range sc.applies {
			apply(&fcfg.Members[i].Config)
		}
	}
	return fcfg, nil
}

// runFederatedCell executes one federated scenario replica and reduces it
// to one ReplicaMetrics per member plus the fleet-wide fold, in that
// order. Members stream: each completed job folds into a per-member
// StreamReducer the moment it finalizes and the study drops its attempt
// history, so a paper-scale federated replica holds scalars per job — the
// same memory profile as the plain-study streaming path — while the
// reductions stay bit-identical to the batch fold
// (TestFederatedStreamingMatchesBatch pins this).
func runFederatedCell(sc *Scenario, runSeed uint64, pool *par.Pool) ([]ReplicaMetrics, error) {
	fcfg, err := federatedConfig(sc, runSeed)
	if err != nil {
		return nil, err
	}
	st, err := federation.NewStudy(fcfg)
	if err != nil {
		return nil, err
	}
	st.SetPool(pool)
	reds := make([]*StreamReducer, st.NumMembers())
	for i := range reds {
		reds[i] = NewStreamReducer(st.MemberNumJobs(i))
	}
	st.StreamMemberJobs(func(mi, i int, r *core.JobResult) { reds[mi].ObserveJob(i, r) })
	res, err := st.Run()
	if err != nil {
		return nil, err
	}
	cell := make([]ReplicaMetrics, 0, len(res.Members)+1)
	for mi, m := range res.Members {
		cell = append(cell, reds[mi].Finish(m.Result))
	}
	cell = append(cell, fleetFinishStream(runSeed, reds, res))
	return cell, nil
}

// fleetReduce folds every member's jobs into fleet-wide metrics: one job
// population, percentiles over the union, utilization weighted by sample
// count. Offloaded bookkeeping shells are skipped — the receiving member's
// injected copy is the job's one countable record — so fleet totals count
// each logical job exactly once.
//
// The counting rules mirror internal/analysis.ComputeFleet's combined row
// (the two folds serve different metric sets but must agree on what
// counts fleet-wide); TestFleetReduceAgreesWithAnalysis pins the shared
// quantities against each other.
func fleetReduce(seed uint64, res *federation.Result) ReplicaMetrics {
	m := ReplicaMetrics{Seed: seed}
	var jct, delay []float64
	unsuccessful := 0
	var utilSum, ckptGPUh float64
	var utilN uint64
	var utilMin, utilMax float64
	utilMembers := 0
	outageEvents := 0
	var outageHoursSum, outageDownHoursSum float64
	for _, mem := range res.Members {
		r := mem.Result
		// GPU-hour sums fold per member first, then into the fleet total —
		// the same association the per-member rows and the analysis fleet
		// table use, so the fleet row is the exact float sum of its member
		// rows (a single flat accumulator differs in the last bits).
		var memGPUH, memFailedGPUH, memLostGPUH, memCkptGPUH float64
		for i := range r.Jobs {
			j := &r.Jobs[i]
			if j.Offloaded {
				continue
			}
			memGPUH += j.GPUMinutes / 60
			memLostGPUH += j.LostGPUMinutes / 60
			memCkptGPUH += j.CkptGPUMinutes / 60
			for _, att := range j.Attempts {
				if att.Failed {
					memFailedGPUH += att.RuntimeMinutes * float64(j.Spec.GPUs) / 60
				}
			}
			if j.Evacuated {
				// Checkpoint-migration donor shell: its GPU time stays in
				// this member's totals, but the job itself is counted (and
				// completes) at the receiving member's resumed copy.
				continue
			}
			m.Jobs++
			if !j.Completed {
				continue
			}
			m.Completed++
			jct = append(jct, (j.EndAt - j.Spec.SubmitAt).Minutes())
			delay = append(delay, j.FirstQueueDelay.Minutes())
			if j.Outcome == failures.Unsuccessful {
				unsuccessful++
			}
		}
		m.GPUHours += memGPUH
		m.FailedGPUHours += memFailedGPUH
		m.LostGPUHours += memLostGPUH
		ckptGPUh += memCkptGPUH
		if h := r.Telemetry.All(); h.Count() > 0 {
			mean := h.Mean()
			utilSum += mean * float64(h.Count())
			utilN += h.Count()
			if utilMembers == 0 || mean < utilMin {
				utilMin = mean
			}
			if utilMembers == 0 || mean > utilMax {
				utilMax = mean
			}
			utilMembers++
		}
		// Fleet ETTF/ETTR re-fold the member means over the union of outage
		// events: each member's observed hours are recovered as mean×events.
		if ev := r.Outages.Events; ev > 0 {
			outageEvents += ev
			outageHoursSum += r.Outages.ETTFHours * float64(ev)
			outageDownHoursSum += r.Outages.ETTRHours * float64(ev)
		}
		m.Preemptions += r.Sched.FairSharePreemptions + r.Sched.PolicyPreemptions
		m.Migrations += r.Sched.Migrations
	}
	m.JCTp50 = stats.Percentile(jct, 50)
	m.JCTMean = stats.Mean(jct)
	m.DelayP50 = stats.Percentile(delay, 50)
	m.DelayP95 = stats.Percentile(delay, 95)
	if utilN > 0 {
		m.MeanUtilPct = utilSum / float64(utilN)
	}
	if m.Completed > 0 {
		m.UnsuccessfulPct = 100 * float64(unsuccessful) / float64(m.Completed)
	}
	if m.GPUHours > 0 {
		m.CkptOverheadPct = 100 * ckptGPUh / m.GPUHours
	}
	if outageEvents > 0 {
		m.ETTFHours = outageHoursSum / float64(outageEvents)
		m.ETTRHours = outageDownHoursSum / float64(outageEvents)
	}
	if utilMembers > 1 {
		m.ImbalancePct = utilMax - utilMin
	}
	return m
}

// fleetFinishStream is fleetReduce over streamed accumulators: it replays
// exactly the batch fold's member-major, job-index-order floating-point
// arithmetic from the per-member StreamReducers (every per-job quantity in
// a jobAccum is computed by ObserveJob with the same expression fleetReduce
// uses), so its result is bit-identical to fleetReduce over fully retained
// member results. Jobs the observers never saw — those that missed the
// horizon — still have whole records in the member results and are folded
// on demand.
func fleetFinishStream(seed uint64, reds []*StreamReducer, res *federation.Result) ReplicaMetrics {
	m := ReplicaMetrics{Seed: seed}
	var jct, delay []float64
	unsuccessful := 0
	var utilSum, ckptGPUh float64
	var utilN uint64
	var utilMin, utilMax float64
	utilMembers := 0
	outageEvents := 0
	var outageHoursSum, outageDownHoursSum float64
	for mi, mem := range res.Members {
		r := mem.Result
		red := reds[mi]
		// Same association as fleetReduce: per-member sums first, then into
		// the fleet total, so the fleet row remains the exact float sum of
		// its member rows.
		var memGPUH, memFailedGPUH, memLostGPUH, memCkptGPUH float64
		for i := 0; i < len(r.Jobs); i++ {
			a := red.accumFor(i, &r.Jobs[i])
			if a.offloaded {
				continue
			}
			memGPUH += a.gpuMin / 60
			memLostGPUH += a.lostGPUh
			memCkptGPUH += a.ckptGPUh
			for _, f := range a.failedGPUh {
				memFailedGPUH += f
			}
			if a.evacuated {
				continue
			}
			m.Jobs++
			if !a.completed {
				continue
			}
			m.Completed++
			jct = append(jct, a.jctMin)
			delay = append(delay, a.delayMin)
			if a.unsucc {
				unsuccessful++
			}
		}
		m.GPUHours += memGPUH
		m.FailedGPUHours += memFailedGPUH
		m.LostGPUHours += memLostGPUH
		ckptGPUh += memCkptGPUH
		if h := r.Telemetry.All(); h.Count() > 0 {
			mean := h.Mean()
			utilSum += mean * float64(h.Count())
			utilN += h.Count()
			if utilMembers == 0 || mean < utilMin {
				utilMin = mean
			}
			if utilMembers == 0 || mean > utilMax {
				utilMax = mean
			}
			utilMembers++
		}
		if ev := r.Outages.Events; ev > 0 {
			outageEvents += ev
			outageHoursSum += r.Outages.ETTFHours * float64(ev)
			outageDownHoursSum += r.Outages.ETTRHours * float64(ev)
		}
		m.Preemptions += r.Sched.FairSharePreemptions + r.Sched.PolicyPreemptions
		m.Migrations += r.Sched.Migrations
	}
	m.JCTp50 = stats.Percentile(jct, 50)
	m.JCTMean = stats.Mean(jct)
	m.DelayP50 = stats.Percentile(delay, 50)
	m.DelayP95 = stats.Percentile(delay, 95)
	if utilN > 0 {
		m.MeanUtilPct = utilSum / float64(utilN)
	}
	if m.Completed > 0 {
		m.UnsuccessfulPct = 100 * float64(unsuccessful) / float64(m.Completed)
	}
	if m.GPUHours > 0 {
		m.CkptOverheadPct = 100 * ckptGPUh / m.GPUHours
	}
	if outageEvents > 0 {
		m.ETTFHours = outageHoursSum / float64(outageEvents)
		m.ETTRHours = outageDownHoursSum / float64(outageEvents)
	}
	if utilMembers > 1 {
		m.ImbalancePct = utilMax - utilMin
	}
	return m
}

// hasFleetScenario reports whether any scenario is federated. A fleet
// axis gives every scenario a member list, so this is all-or-nothing per
// matrix.
func hasFleetScenario(scenarios []Scenario) bool {
	for i := range scenarios {
		if scenarios[i].Fleet != nil {
			return true
		}
	}
	return false
}

// expandFederated turns per-scenario federated cells into the final
// result: each scenario becomes one row per member plus a "fleet" row,
// labeled under a synthetic trailing "member" axis. Member rows carry the
// member's resolved configuration (preset plus applies, seed unset, as
// scenario configs always are); the fleet row carries the scenario's base
// configuration.
func expandFederated(out *Result, scenarios []Scenario, metrics [][][]ReplicaMetrics) (*Result, error) {
	out.AxisNames = append(out.AxisNames, "member")
	for i := range scenarios {
		sc := &scenarios[i]
		fcfg, err := federatedConfig(sc, 0)
		if err != nil {
			return nil, fmt.Errorf("sweep: scenario %q: %w", sc.Name, err)
		}
		names := make([]string, 0, len(fcfg.Members)+1)
		configs := make([]core.Config, 0, len(fcfg.Members)+1)
		for _, mem := range fcfg.Members {
			cfg := mem.Config
			cfg.Seed = 0
			names = append(names, mem.Name)
			configs = append(configs, cfg)
		}
		names = append(names, fleetMemberLabel)
		configs = append(configs, sc.Config)

		for mi, mname := range names {
			rows := make([]ReplicaMetrics, len(metrics[i]))
			for r := range metrics[i] {
				if mi >= len(metrics[i][r]) {
					return nil, fmt.Errorf("sweep: scenario %q replica %d: short federated cell", sc.Name, r)
				}
				rows[r] = metrics[i][r][mi]
			}
			labels := append(append([]string(nil), sc.Labels...), mname)
			out.Scenarios = append(out.Scenarios, ScenarioResult{
				Scenario: Scenario{
					Index:  len(out.Scenarios),
					Name:   sc.Name + " member=" + mname,
					Labels: labels,
					Config: configs[mi],
					Fleet:  sc.Fleet,
				},
				Replicas: rows,
				Summary:  Summarize(rows),
			})
		}
	}
	return out, nil
}
