package sweep

import (
	"errors"
	"fmt"
	"sync"

	"philly/internal/core"
	"philly/internal/par"
	"philly/internal/stats"
)

// ErrCanceled is returned by Run when Options.Cancel closed before the
// sweep completed. Use errors.Is to distinguish a cancellation from a
// real run failure.
var ErrCanceled = errors.New("sweep: canceled")

// Options parameterizes a sweep run.
type Options struct {
	// Replicas is the number of seed replicas per scenario (default 1).
	Replicas int
	// Workers is the sweep's total parallelism budget — one shared
	// internal/par pool of this size runs both the across-study workers
	// (one study per worker) and every study's intra-study shards
	// (telemetry chunks, placement scoring). The two layers cannot
	// oversubscribe: intra-study shards are handed only to workers that
	// are idle at that instant, so a sweep that saturates the pool with
	// studies runs each study inline, and as the queue drains the freed
	// workers start accelerating the stragglers. 0 means GOMAXPROCS.
	// Worker count never affects results, only wall-clock.
	Workers int
	// Pool, when non-nil, is used instead of constructing (and closing) a
	// fresh pool of Workers size — for callers embedding the sweep in a
	// larger parallel computation that already owns a budget.
	Pool *par.Pool
	// BaseSeed roots per-run seed derivation; 0 means Matrix.Base.Seed.
	BaseSeed uint64
	// ShardEvents runs every study on the per-VC sharded event engine
	// (one shard per VC). Results are bit-identical either way; when the
	// sweep saturates the pool with studies the shard windows run inline
	// anyway, so this mainly helps sweeps with fewer scenarios than
	// workers, where idle workers pick up the window fork-joins.
	ShardEvents bool
	// Progress, when non-nil, is called after each completed run with
	// (done, total). Calls come from worker goroutines, possibly
	// concurrently; it must be safe for that.
	Progress func(done, total int)
	// Cancel, when non-nil, aborts the sweep as soon as the channel is
	// closed: no further scenario × replica unit starts, and Run returns
	// ErrCanceled. Units already executing run to completion first —
	// cancellation latency is bounded by one cell, which keeps the engine
	// free of mid-study interrupt plumbing while letting a long sweep be
	// abandoned promptly (the serve admission layer relies on this for
	// clean shutdown).
	Cancel <-chan struct{}
}

// Result is a completed sweep.
type Result struct {
	// Scenarios holds one entry per matrix cell, in expansion order.
	Scenarios []ScenarioResult
	// AxisNames holds the matrix's axis names in axis order; comparison
	// tables use them as per-axis column headers.
	AxisNames []string
	// Replicas echoes Options.Replicas; BaseSeed the effective base seed.
	Replicas int
	BaseSeed uint64
}

// ScenarioResult pairs a scenario with its replica metrics and summary.
type ScenarioResult struct {
	// Scenario echoes the matrix cell.
	Scenario Scenario
	// Replicas holds per-replica metrics indexed by replica number — the
	// order is derivation order, never completion order.
	Replicas []ReplicaMetrics
	// Summary folds the replicas (see Summarize).
	Summary Summary
}

// DeriveSeed maps (baseSeed, scenarioIdx, replicaIdx) to a run seed with
// splitmix64 steps, so each cell of the sweep gets an unrelated stream and
// the mapping is stable across harness versions, worker counts, and
// completion order. TestDeriveSeedStability pins golden values.
func DeriveSeed(baseSeed uint64, scenarioIdx, replicaIdx int) uint64 {
	h := stats.SplitMix64(baseSeed ^ 0x517cc1b727220a95)
	h = stats.SplitMix64(h ^ (uint64(scenarioIdx)+1)*0x9e3779b97f4a7c15)
	h = stats.SplitMix64(h ^ (uint64(replicaIdx)+1)*0xbf58476d1ce4e5b9)
	return h
}

// Run expands the matrix and executes every scenario × replica across the
// shared worker pool. Any run error (including a scenario whose
// configuration fails validation) stops the remaining queue and is
// returned.
func (m Matrix) Run(opts Options) (*Result, error) {
	scenarios, err := m.Scenarios()
	if err != nil {
		return nil, err
	}
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	baseSeed := opts.BaseSeed
	if baseSeed == 0 {
		baseSeed = m.Base.Seed
	}

	// Validate every scenario before spending any simulation time: a typo'd
	// axis value should fail the sweep instantly, not after N-1 cells ran.
	// Federated scenarios validate every member's preset-plus-applies
	// configuration the same way.
	for i := range scenarios {
		if scenarios[i].Fleet != nil {
			fcfg, err := federatedConfig(&scenarios[i], 0)
			if err != nil {
				return nil, fmt.Errorf("sweep: scenario %q: %w", scenarios[i].Name, err)
			}
			if err := fcfg.Validate(); err != nil {
				return nil, fmt.Errorf("sweep: scenario %q: %w", scenarios[i].Name, err)
			}
			continue
		}
		if err := scenarios[i].Config.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: scenario %q: %w", scenarios[i].Name, err)
		}
	}

	pool := opts.Pool
	if pool == nil {
		pool = par.NewPool(opts.Workers)
		defer pool.Close()
	}

	total := len(scenarios) * replicas
	// One cell per scenario × replica. A plain scenario's cell is a single
	// ReplicaMetrics; a federated one's holds one per member plus the
	// fleet-wide fold (see expandFederated).
	metrics := make([][][]ReplicaMetrics, len(scenarios))
	for i := range metrics {
		metrics[i] = make([][]ReplicaMetrics, replicas)
	}

	var (
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	pool.ForkJoin(total, func(unit int) {
		if failed() {
			return
		}
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				fail(ErrCanceled)
				return
			default:
			}
		}
		s, r := unit/replicas, unit%replicas
		runSeed := DeriveSeed(baseSeed, s, r)
		if scenarios[s].Fleet != nil {
			cell, err := runFederatedCell(&scenarios[s], runSeed, pool)
			if err != nil {
				fail(fmt.Errorf("sweep: scenario %q replica %d: %w",
					scenarios[s].Name, r, err))
				return
			}
			metrics[s][r] = cell
		} else {
			cfg := cloneConfig(scenarios[s].Config)
			cfg.Seed = runSeed
			st, err := core.NewStudy(cfg)
			if err != nil {
				fail(fmt.Errorf("sweep: scenario %q replica %d: %w",
					scenarios[s].Name, r, err))
				return
			}
			// Intra-study shards draw on the same pool: idle sweep workers
			// pick them up, busy pools degrade to inline. Either way the
			// study result is bit-identical (see core.Study.SetPool).
			if opts.ShardEvents {
				st.ShardEvents(0)
			}
			st.SetPool(pool)
			// Stream per-job results into the reduction as they finish,
			// so the study releases full job records in flight and the
			// sweep's peak memory tracks the running set, not the whole
			// workload (ROADMAP: memory-bound full-scale sweeps).
			red := NewStreamReducer(st.NumJobs())
			st.StreamJobs(red.ObserveJob)
			res, err := st.Run()
			if err != nil {
				fail(fmt.Errorf("sweep: scenario %q replica %d: %w",
					scenarios[s].Name, r, err))
				return
			}
			metrics[s][r] = []ReplicaMetrics{red.Finish(res)}
		}
		if opts.Progress != nil {
			mu.Lock()
			done++
			d := done
			mu.Unlock()
			opts.Progress(d, total)
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}

	out := &Result{Replicas: replicas, BaseSeed: baseSeed}
	for _, ax := range m.Axes {
		out.AxisNames = append(out.AxisNames, ax.Name)
	}
	if hasFleetScenario(scenarios) {
		return expandFederated(out, scenarios, metrics)
	}
	for i := range scenarios {
		rows := make([]ReplicaMetrics, replicas)
		for r := range metrics[i] {
			rows[r] = metrics[i][r][0]
		}
		sc := scenarios[i]
		// The apply closures are run-time plumbing, not result data; they
		// would also break DeepEqual-based invariance comparisons (func
		// values never compare equal).
		sc.applies = nil
		out.Scenarios = append(out.Scenarios, ScenarioResult{
			Scenario: sc,
			Replicas: rows,
			Summary:  Summarize(rows),
		})
	}
	return out, nil
}
