package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"philly/internal/core"
	"philly/internal/stats"
)

// Options parameterizes a sweep run.
type Options struct {
	// Replicas is the number of seed replicas per scenario (default 1).
	Replicas int
	// Workers bounds pool concurrency; 0 means GOMAXPROCS. Worker count
	// never affects results, only wall-clock.
	Workers int
	// BaseSeed roots per-run seed derivation; 0 means Matrix.Base.Seed.
	BaseSeed uint64
	// Progress, when non-nil, is called after each completed run with
	// (done, total). Calls come from worker goroutines, possibly
	// concurrently; it must be safe for that.
	Progress func(done, total int)
}

// Result is a completed sweep.
type Result struct {
	// Scenarios holds one entry per matrix cell, in expansion order.
	Scenarios []ScenarioResult
	// Replicas echoes Options.Replicas; BaseSeed the effective base seed.
	Replicas int
	BaseSeed uint64
}

// ScenarioResult pairs a scenario with its replica metrics and summary.
type ScenarioResult struct {
	// Scenario echoes the matrix cell.
	Scenario Scenario
	// Replicas holds per-replica metrics indexed by replica number — the
	// order is derivation order, never completion order.
	Replicas []ReplicaMetrics
	// Summary folds the replicas (see Summarize).
	Summary Summary
}

// DeriveSeed maps (baseSeed, scenarioIdx, replicaIdx) to a run seed with
// splitmix64 steps, so each cell of the sweep gets an unrelated stream and
// the mapping is stable across harness versions, worker counts, and
// completion order. TestDeriveSeedStability pins golden values.
func DeriveSeed(baseSeed uint64, scenarioIdx, replicaIdx int) uint64 {
	h := stats.SplitMix64(baseSeed ^ 0x517cc1b727220a95)
	h = stats.SplitMix64(h ^ (uint64(scenarioIdx)+1)*0x9e3779b97f4a7c15)
	h = stats.SplitMix64(h ^ (uint64(replicaIdx)+1)*0xbf58476d1ce4e5b9)
	return h
}

// runUnit is one scenario × replica cell.
type runUnit struct {
	scenario int
	replica  int
}

// Run expands the matrix and executes every scenario × replica across the
// worker pool. Any run error (including a scenario whose configuration
// fails validation) cancels the remaining queue and is returned; the pool
// never hangs on a bad cell.
func (m Matrix) Run(opts Options) (*Result, error) {
	scenarios, err := m.Scenarios()
	if err != nil {
		return nil, err
	}
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	baseSeed := opts.BaseSeed
	if baseSeed == 0 {
		baseSeed = m.Base.Seed
	}

	// Validate every scenario before spending any simulation time: a typo'd
	// axis value should fail the sweep instantly, not after N-1 cells ran.
	for i := range scenarios {
		if err := scenarios[i].Config.Validate(); err != nil {
			return nil, fmt.Errorf("sweep: scenario %q: %w", scenarios[i].Name, err)
		}
	}

	total := len(scenarios) * replicas
	metrics := make([][]ReplicaMetrics, len(scenarios))
	for i := range metrics {
		metrics[i] = make([]ReplicaMetrics, replicas)
	}

	units := make(chan runUnit)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range units {
				if failed() {
					continue // drain the queue so the feeder never blocks
				}
				cfg := cloneConfig(scenarios[u.scenario].Config)
				cfg.Seed = DeriveSeed(baseSeed, u.scenario, u.replica)
				st, err := core.NewStudy(cfg)
				if err != nil {
					fail(fmt.Errorf("sweep: scenario %q replica %d: %w",
						scenarios[u.scenario].Name, u.replica, err))
					continue
				}
				// Stream per-job results into the reduction as they finish,
				// so the study releases full job records in flight and the
				// sweep's peak memory tracks the running set, not the whole
				// workload (ROADMAP: memory-bound full-scale sweeps).
				red := NewStreamReducer(st.NumJobs())
				st.StreamJobs(red.ObserveJob)
				res, err := st.Run()
				if err != nil {
					fail(fmt.Errorf("sweep: scenario %q replica %d: %w",
						scenarios[u.scenario].Name, u.replica, err))
					continue
				}
				metrics[u.scenario][u.replica] = red.Finish(res)
				if opts.Progress != nil {
					mu.Lock()
					done++
					d := done
					mu.Unlock()
					opts.Progress(d, total)
				}
			}
		}()
	}
	for s := range scenarios {
		for r := 0; r < replicas; r++ {
			units <- runUnit{scenario: s, replica: r}
		}
	}
	close(units)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	out := &Result{Replicas: replicas, BaseSeed: baseSeed}
	for i := range scenarios {
		out.Scenarios = append(out.Scenarios, ScenarioResult{
			Scenario: scenarios[i],
			Replicas: metrics[i],
			Summary:  Summarize(metrics[i]),
		})
	}
	return out, nil
}
