package sweep

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"philly/internal/stats"
	"philly/internal/trace"
	"philly/internal/workload"
)

// writeTinyTrace generates tinyConfig's planned job stream and writes it as
// a spec CSV, returning the path — a real replayable trace file for the
// workload.trace axis tests.
func writeTinyTrace(t *testing.T) (string, int) {
	t.Helper()
	cfg := tinyConfig()
	g := stats.NewRNG(cfg.Seed).Split("workload")
	gen, err := workload.NewGenerator(cfg.Workload, g)
	if err != nil {
		t.Fatal(err)
	}
	specs := gen.Generate(g)
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSpecsCSV(f, specs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, len(specs)
}

// TestTemporalAxisParsing covers the workload.pattern / workload.trace axis
// syntax: preset resolution, the "none" escape, and load-time failures for
// unknown presets and unreadable trace files.
func TestTemporalAxisParsing(t *testing.T) {
	ax := mustParse(t, "workload.pattern=none,diurnal,weekly")
	if len(ax.Values) != 3 {
		t.Fatalf("workload.pattern axis has %d values, want 3", len(ax.Values))
	}
	if _, err := ParseAxis("workload.pattern=no-such-preset"); err == nil {
		t.Fatal("unknown pattern preset must fail at parse time")
	}
	if _, err := ParseAxis("workload.trace=/no/such/file.csv"); err == nil {
		t.Fatal("missing trace file must fail at parse time, not per scenario")
	}
	path, _ := writeTinyTrace(t)
	ax = mustParse(t, "workload.trace="+path+",none")
	if len(ax.Values) != 2 {
		t.Fatalf("workload.trace axis has %d values, want 2", len(ax.Values))
	}
}

// TestPatternAxisApplies pins the apply semantics: a preset value installs
// a validating pattern, "none" clears it, and two applications of the same
// value never share phase state across scenario configs.
func TestPatternAxisApplies(t *testing.T) {
	ax := mustParse(t, "workload.pattern=diurnal,none")
	base := tinyConfig()

	cfgA, cfgB := base, base
	ax.Values[0].Apply(&cfgA)
	ax.Values[0].Apply(&cfgB)
	if cfgA.Workload.Pattern == nil || cfgA.Workload.Pattern.Name != workload.PatternDiurnal {
		t.Fatalf("diurnal value applied pattern %+v", cfgA.Workload.Pattern)
	}
	if err := cfgA.Validate(); err != nil {
		t.Fatalf("pattern-applied config invalid: %v", err)
	}
	if cfgA.Workload.Pattern == cfgB.Workload.Pattern {
		t.Fatal("two applications share one *Pattern")
	}
	// Mutating one scenario's phase maps must not leak into a sibling.
	for i := range cfgA.Workload.Pattern.Phases {
		ph := &cfgA.Workload.Pattern.Phases[i]
		if ph.SizeWeights != nil {
			ph.SizeWeights[1] = 99
		}
		ph.Rate = 123
	}
	for i := range cfgB.Workload.Pattern.Phases {
		ph := &cfgB.Workload.Pattern.Phases[i]
		if ph.Rate == 123 {
			t.Fatal("phase slice aliased across applications")
		}
		if ph.SizeWeights != nil && ph.SizeWeights[1] == 99 {
			t.Fatal("phase size map aliased across applications")
		}
	}

	cfgC := base
	p, err := workload.PresetPattern(workload.PatternWeekly)
	if err != nil {
		t.Fatal(err)
	}
	cfgC.Workload.Pattern = p
	ax.Values[1].Apply(&cfgC)
	if cfgC.Workload.Pattern != nil {
		t.Fatal(`"none" did not clear the pattern`)
	}
}

// TestTraceAxisApplies pins the replay-axis semantics: applying a trace
// value swaps the scenario onto the loaded stream (job count and horizon
// derived from it) and the config still validates; "none" restores the
// generative workload.
func TestTraceAxisApplies(t *testing.T) {
	path, n := writeTinyTrace(t)
	ax := mustParse(t, "workload.trace="+path+",none")

	cfg := tinyConfig()
	ax.Values[0].Apply(&cfg)
	if len(cfg.Workload.Replay) != n || cfg.Workload.TotalJobs != n {
		t.Fatalf("replay stream has %d specs, TotalJobs %d, want %d",
			len(cfg.Workload.Replay), cfg.Workload.TotalJobs, n)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("trace-applied config invalid: %v", err)
	}

	ax.Values[1].Apply(&cfg)
	if cfg.Workload.Replay != nil {
		t.Fatal(`"none" did not clear the replay stream`)
	}
}

// TestTemporalSweepDeterministic runs a small pattern × policy sweep twice
// (different worker counts) and requires identical results — the temporal
// axes must inherit the sweep harness's worker-count invariance.
func TestTemporalSweepDeterministic(t *testing.T) {
	path, _ := writeTinyTrace(t)
	m := Matrix{Base: tinyConfig(), Axes: []Axis{
		mustParse(t, "workload.pattern=none,diurnal"),
		mustParse(t, "workload.trace=none,"+path),
	}}
	a, err := m.Run(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("temporal sweep diverged across worker counts")
	}
	if len(a.Scenarios) != 4 {
		t.Fatalf("got %d scenarios, want 4", len(a.Scenarios))
	}
	// Expansion is row-major with the first axis slowest, so scenarios 0
	// and 2 are the generative (trace=none) legs of the two patterns; they
	// must differ. The trace legs (1 and 3) both replay the same stream —
	// replay is the temporal authority, so the pattern axis changes nothing
	// about which jobs run (only the scenario's derived seed differs).
	genNone, genDiurnal := &a.Scenarios[0], &a.Scenarios[2]
	if reflect.DeepEqual(genNone.Replicas, genDiurnal.Replicas) {
		t.Fatal("diurnal pattern produced a study identical to the legacy modulation")
	}
}
