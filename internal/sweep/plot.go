package sweep

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Plot-hook output: the machine-readable export (philly-sweep -o json)
// carries everything the comparison table shows, and these writers turn a
// decoded export into the two formats plotting pipelines actually consume —
// a tidy ("long") CSV with one row per scenario × metric, and a
// GitHub-flavored Markdown table mirroring RenderTable. Both emit one
// column per axis, so downstream tools can facet or group by axis without
// re-parsing scenario names.

// WritePlotCSV writes the sweep summary in tidy form: per-axis label
// columns (or a single "scenario" column when the result carries no axis
// names), then the replica count and one row per metric with the full
// aggregate (mean, p50, p95, min, max, ci95). Undefined values (a scenario
// that completed zero jobs has NaN percentiles) render as empty cells.
// Rows appear in scenario order, metrics in Metrics() order — a pure
// function of the Result, so the output is golden-file stable.
func (r *Result) WritePlotCSV(w io.Writer) error {
	defs := Metrics()
	axes, axisNames := r.plotAxes()
	var b strings.Builder
	for _, name := range axisNames {
		b.WriteString(csvField(name))
		b.WriteByte(',')
	}
	b.WriteString("replicas,metric,mean,p50,p95,min,max,ci95\n")
	for i := range r.Scenarios {
		sc := &r.Scenarios[i]
		for j, d := range defs {
			if j >= len(sc.Summary.Metrics) {
				break
			}
			a := sc.Summary.Metrics[j]
			for _, col := range axes {
				b.WriteString(csvField(col[i]))
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d,%s,%s,%s,%s,%s,%s,%s\n",
				len(sc.Replicas), csvField(d.Name),
				csvFloat(a.Mean), csvFloat(a.P50), csvFloat(a.P95),
				csvFloat(a.Min), csvFloat(a.Max), csvFloat(a.CI95))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WritePlotMarkdown renders the cross-scenario comparison as a GitHub-
// flavored Markdown table: one column per axis, one "mean±95%CI" column
// per metric — RenderTable's content in a form READMEs and dashboards
// embed directly.
func (r *Result) WritePlotMarkdown(w io.Writer) error {
	defs := Metrics()
	axes, axisNames := r.plotAxes()
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep: %d scenario(s) × %d replica(s), base seed %d\n\n",
		len(r.Scenarios), r.Replicas, r.BaseSeed)
	b.WriteString("|")
	for _, name := range axisNames {
		b.WriteString(" " + mdField(name) + " |")
	}
	b.WriteString(" replicas |")
	for _, d := range defs {
		b.WriteString(" " + mdField(d.Name) + " |")
	}
	b.WriteString("\n|")
	for i := 0; i < len(axisNames); i++ {
		b.WriteString("---|")
	}
	b.WriteString("---:|")
	for range defs {
		b.WriteString("---:|")
	}
	b.WriteString("\n")
	for i := range r.Scenarios {
		sc := &r.Scenarios[i]
		b.WriteString("|")
		for _, col := range axes {
			b.WriteString(" " + mdField(col[i]) + " |")
		}
		fmt.Fprintf(&b, " %d |", len(sc.Replicas))
		for j := range defs {
			cell := "-"
			if j < len(sc.Summary.Metrics) {
				cell = fmtAgg(sc.Summary.Metrics[j])
			}
			b.WriteString(" " + mdField(cell) + " |")
		}
		b.WriteString("\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// plotAxes returns per-axis label columns (raw values, no table
// alignment) plus their header names, falling back to one opaque
// "scenario" column when axis labels are unavailable.
func (r *Result) plotAxes() ([][]string, []string) {
	if len(r.AxisNames) > 0 {
		cols := make([][]string, len(r.AxisNames))
		complete := true
		for a := range cols {
			col := make([]string, len(r.Scenarios))
			for i := range r.Scenarios {
				labels := r.Scenarios[i].Scenario.Labels
				if a >= len(labels) {
					complete = false // ragged labels: opaque fallback
					break
				}
				col[i] = labels[a]
			}
			if !complete {
				break
			}
			cols[a] = col
		}
		if complete {
			return cols, r.AxisNames
		}
	}
	col := make([]string, len(r.Scenarios))
	for i := range r.Scenarios {
		col[i] = r.Scenarios[i].Scenario.Name
	}
	return [][]string{col}, []string{"scenario"}
}

// csvFloat renders a float at full precision, NaN as the empty cell.
func csvFloat(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// csvField quotes a CSV field when it needs it.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
	}
	return s
}

// mdField escapes the table delimiter inside a Markdown cell.
func mdField(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
