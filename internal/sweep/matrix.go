// Package sweep is the parallel study-sweep harness: it expands named
// configuration axes into a cross-product of core.Config scenarios, runs
// scenario × seed replicas across a worker pool, and folds the replicas
// into per-scenario summaries with confidence intervals.
//
// The paper's headline results are comparisons across configurations
// (queueing delay vs. locality relaxation, utilization with and without
// interference, failure cost with and without adaptive retry), and related
// characterization studies sweep policies and replicate over seeds the same
// way. The harness makes those comparisons one call instead of N
// hand-driven runs — and keeps them trustworthy: per-run seeds are derived
// purely from (baseSeed, scenarioIdx, replicaIdx), so aggregated output is
// bit-identical regardless of worker count or completion order.
package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"philly/internal/cluster"
	"philly/internal/core"
	"philly/internal/faults"
	"philly/internal/federation"
	"philly/internal/scheduler"
	"philly/internal/simulation"
	"philly/internal/trace"
	"philly/internal/workload"
)

// Value is one setting of an axis: a human-readable label plus the config
// mutation it stands for.
type Value struct {
	// Label names the setting in scenario names and tables ("fifo", "on").
	Label string
	// Apply mutates a copy of the base configuration. It may be nil for
	// fleet-level values.
	Apply func(*core.Config)
	// Fleet, when non-nil, makes scenarios with this value federated: the
	// listed member presets run as one multi-cluster study (see
	// internal/federation), with every other axis's Apply applied to every
	// member's configuration. Set by the fleet.members axis.
	Fleet []string
}

// Axis is one named configuration dimension with the values to sweep.
type Axis struct {
	// Name is the axis name ("sched.policy", "defrag").
	Name string
	// Values are the settings to cross with every other axis.
	Values []Value
}

// Matrix is a sweep specification: a base configuration plus the axes whose
// cross-product defines the scenarios.
type Matrix struct {
	// Base is the configuration every scenario starts from. Base.Seed is
	// the default base seed for replica derivation (see Options.BaseSeed).
	Base core.Config
	// Axes are crossed in order; scenario names join "axis=label" pairs.
	Axes []Axis
}

// Scenario is one expanded cell of the matrix.
type Scenario struct {
	// Index is the scenario's position in expansion order (row-major over
	// the axes, first axis slowest). Seed derivation uses it, so scenario
	// order — not completion order — defines the random streams.
	Index int
	// Name joins the axis settings, e.g. "sched.policy=fifo defrag=on".
	// For an empty matrix (no axes) it is "base".
	Name string
	// Labels holds the per-axis value labels in axis order.
	Labels []string
	// Config is the fully-applied configuration (Seed still unset; the
	// runner overwrites it per replica).
	Config core.Config
	// Fleet lists the member presets of a federated scenario (nil for a
	// plain single-cluster one); set by a fleet.members axis value.
	Fleet []string
	// applies holds the non-fleet value mutations in axis order, so the
	// runner can re-apply them to each federation member's preset config.
	applies []func(*core.Config)
}

// Scenarios expands the cross-product. An axis with no values is an error
// (it would silently zero the whole product), as is a duplicate axis name
// (the later axis would silently win every cell).
func (m Matrix) Scenarios() ([]Scenario, error) {
	seen := map[string]bool{}
	fleetAxes := 0
	for _, ax := range m.Axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("sweep: axis with empty name")
		}
		if seen[ax.Name] {
			return nil, fmt.Errorf("sweep: duplicate axis %q", ax.Name)
		}
		seen[ax.Name] = true
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Name)
		}
		fleetVals := 0
		for _, v := range ax.Values {
			if v.Fleet != nil {
				fleetVals++
			}
		}
		if fleetVals > 0 {
			if fleetVals != len(ax.Values) {
				// A mixed axis would make some scenarios federated and some
				// not; the member-row expansion is all-or-nothing per
				// matrix, and failing here beats failing after every cell
				// has already simulated.
				return nil, fmt.Errorf("sweep: axis %q mixes fleet and non-fleet values", ax.Name)
			}
			fleetAxes++
		}
	}
	if fleetAxes > 1 {
		return nil, fmt.Errorf("sweep: at most one axis may set fleet members")
	}
	total := 1
	for _, ax := range m.Axes {
		total *= len(ax.Values)
	}
	scenarios := make([]Scenario, 0, total)
	idx := make([]int, len(m.Axes))
	for i := 0; i < total; i++ {
		cfg := cloneConfig(m.Base)
		labels := make([]string, len(m.Axes))
		parts := make([]string, len(m.Axes))
		var fleet []string
		var applies []func(*core.Config)
		for a, ax := range m.Axes {
			v := ax.Values[idx[a]]
			if v.Apply != nil {
				v.Apply(&cfg)
				applies = append(applies, v.Apply)
			}
			if v.Fleet != nil {
				fleet = v.Fleet
			}
			labels[a] = v.Label
			parts[a] = ax.Name + "=" + v.Label
		}
		name := strings.Join(parts, " ")
		if name == "" {
			name = "base"
		}
		scenarios = append(scenarios, Scenario{
			Index:   i,
			Name:    name,
			Labels:  labels,
			Config:  cfg,
			Fleet:   fleet,
			applies: applies,
		})
		// Odometer increment, last axis fastest.
		for a := len(idx) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(m.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
	}
	return scenarios, nil
}

// cloneConfig copies the base configuration deeply enough that an Apply
// mutating any reference-typed field — rack sizes, VC quotas, the job-size
// weight map — cannot alias across scenarios. core.Config's only other
// nested fields are value types.
func cloneConfig(c core.Config) core.Config {
	c.Cluster.Racks = append([]cluster.RackConfig(nil), c.Cluster.Racks...)
	c.Workload.VCs = append([]workload.VirtualCluster(nil), c.Workload.VCs...)
	if c.Workload.SizeWeights != nil {
		w := make(map[int]float64, len(c.Workload.SizeWeights))
		for k, v := range c.Workload.SizeWeights {
			w[k] = v
		}
		c.Workload.SizeWeights = w
	}
	// Pattern holds per-phase weight maps; Clone stops scenarios aliasing
	// them. Replay is deliberately NOT copied: a loaded trace is read-only
	// by contract (the generator copies before sorting), and duplicating a
	// 100k-job stream per scenario would dominate sweep memory.
	c.Workload.Pattern = c.Workload.Pattern.Clone()
	// Faults holds the maintenance-window slice.
	c.Faults = c.Faults.Clone()
	return c
}

// axisParser builds the Apply function for one value of a named knob.
type axisParser func(value string) (func(*core.Config), error)

// knobs is the registry of axis names ParseAxis understands. Each knob
// parses one comma-separated value into a config mutation.
var knobs = map[string]axisParser{
	"sched.policy": func(v string) (func(*core.Config), error) {
		var p scheduler.Policy
		switch v {
		case "philly":
			p = scheduler.PolicyPhilly
		case "fifo":
			p = scheduler.PolicyFIFO
		case "srtf":
			p = scheduler.PolicySRTF
		case "tiresias":
			p = scheduler.PolicyTiresias
		case "gandiva":
			p = scheduler.PolicyGandiva
		default:
			return nil, fmt.Errorf("unknown policy %q (want philly, fifo, srtf, tiresias or gandiva)", v)
		}
		return func(c *core.Config) { c.Scheduler.Policy = p }, nil
	},
	"defrag": func(v string) (func(*core.Config), error) {
		on, err := parseOnOff(v)
		if err != nil {
			return nil, err
		}
		return func(c *core.Config) { c.Defrag.Enabled = on }, nil
	},
	"adaptive-retry": func(v string) (func(*core.Config), error) {
		on, err := parseOnOff(v)
		if err != nil {
			return nil, err
		}
		return func(c *core.Config) { c.AdaptiveRetry = on }, nil
	},
	"checkpoint.retention": func(v string) (func(*core.Config), error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("checkpoint.retention %q: %v", v, err)
		}
		return func(c *core.Config) { c.CheckpointRetention = f }, nil
	},
	"sched.backoff-min": func(v string) (func(*core.Config), error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("sched.backoff-min %q: %v", v, err)
		}
		return func(c *core.Config) { c.Scheduler.Backoff = simulation.FromMinutes(f) }, nil
	},
	// locality.relax takes "rack:any" attempt thresholds, e.g. "4:8";
	// "0:0" is the impatient scheduler that relaxes immediately.
	"locality.relax": func(v string) (func(*core.Config), error) {
		rack, any, ok := strings.Cut(v, ":")
		if !ok {
			return nil, fmt.Errorf("locality.relax %q: want rackAfter:anyAfter", v)
		}
		r, err1 := strconv.Atoi(rack)
		a, err2 := strconv.Atoi(any)
		if err1 != nil || err2 != nil || r < 0 || a < 0 {
			return nil, fmt.Errorf("locality.relax %q: want two non-negative ints", v)
		}
		return func(c *core.Config) {
			c.Scheduler.RelaxToRackAfter = r
			c.Scheduler.RelaxToAnyAfter = a
		}, nil
	},
	"jobs": func(v string) (func(*core.Config), error) {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("jobs %q: want a positive int", v)
		}
		return func(c *core.Config) { c.Workload.TotalJobs = n }, nil
	},
	// workload.mix selects the job-size distribution: a named preset
	// ("default" is the paper's Table 6 mix, "small" skews toward 1-GPU
	// jobs, "large" toward multi-server gangs) or an explicit
	// semicolon-separated weight list like "1:0.7;8:0.3".
	"workload.mix": func(v string) (func(*core.Config), error) {
		weights, err := parseMix(v)
		if err != nil {
			return nil, err
		}
		return func(c *core.Config) {
			// Fresh copy per application: one Value can apply to many
			// scenarios, whose configs must not share the map.
			w := make(map[int]float64, len(weights))
			for size, wt := range weights {
				w[size] = wt
			}
			c.Workload.SizeWeights = w
		}, nil
	},
	// failure.scale multiplies the per-size-bucket unsuccessful and
	// transient-failure probabilities, clamped so the per-bucket outcome
	// distribution stays valid; 1 is the paper's calibration, 0 a failure-
	// free cluster, 2 a cluster failing twice as often. A phase's
	// FailureScale applies workload.ScaleFailures again on top of this
	// base, so axis and phase scales compose multiplicatively.
	"failure.scale": func(v string) (func(*core.Config), error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("failure.scale %q: want a non-negative float", v)
		}
		return func(c *core.Config) {
			c.Workload.Failures = workload.ScaleFailures(c.Workload.Failures, f)
		}, nil
	},
	// failure.domains configures the correlated-outage engine: "none"
	// disables it, otherwise a "+"-joined subset of server, rack, cluster
	// (or "all") with an optional :SCALE frequency multiplier — see
	// faults.ParseSpec. Outage draws come from a dedicated RNG stream, so
	// "none" is byte-identical to a matrix without this axis.
	"failure.domains": func(v string) (func(*core.Config), error) {
		fc, err := faults.ParseSpec(v)
		if err != nil {
			return nil, err
		}
		return func(c *core.Config) {
			// Fresh clone per application: one Value can apply to many
			// scenarios, whose configs must not share the maintenance slice.
			c.Faults = fc.Clone()
		}, nil
	},
	// checkpoint.interval sets the periodic-checkpoint cost model: "off"
	// disables it, a positive float enables it with that interval in
	// minutes (write/restore costs keep the base config's values, which
	// default to core.DefaultCheckpointConfig's).
	"checkpoint.interval": func(v string) (func(*core.Config), error) {
		if v == "off" {
			return func(c *core.Config) { c.Checkpoint.Enabled = false }, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("checkpoint.interval %q: want off or a positive float (minutes)", v)
		}
		iv := simulation.FromMinutes(f)
		if iv <= 0 {
			return nil, fmt.Errorf("checkpoint.interval %q: rounds to zero seconds", v)
		}
		return func(c *core.Config) {
			c.Checkpoint.Enabled = true
			c.Checkpoint.Interval = iv
		}, nil
	},
	// telemetry.cadence sets the hardware-counter sampling period in
	// minutes (the paper's Ganglia reports are per-minute; coarser cadence
	// trades telemetry resolution for simulation speed).
	"telemetry.cadence": func(v string) (func(*core.Config), error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("telemetry.cadence %q: want a positive float (minutes)", v)
		}
		iv := simulation.FromMinutes(f)
		if iv <= 0 {
			return nil, fmt.Errorf("telemetry.cadence %q: rounds to zero seconds", v)
		}
		return func(c *core.Config) { c.TelemetryInterval = iv }, nil
	},
	// workload.pattern selects the temporal phase program: a preset name
	// from workload.PatternNames() ("stationary", "diurnal", "weekly",
	// "burst", "night-batch"), or "none" for the legacy cosine modulation.
	// Composes with every other axis, including fleet.members (each member
	// runs the pattern on its own derived streams).
	"workload.pattern": func(v string) (func(*core.Config), error) {
		if v == "none" {
			return func(c *core.Config) { c.Workload.Pattern = nil }, nil
		}
		p, err := workload.PresetPattern(v)
		if err != nil {
			return nil, err
		}
		return func(c *core.Config) {
			// Fresh clone per application: one Value can apply to many
			// scenarios, whose configs must not share the phase maps.
			c.Workload.Pattern = p.Clone()
		}, nil
	},
	// workload.trace replays a trace file (spec CSV, observed CSV/JSON, or
	// msr-fiddle philly JSON; "none" keeps the generative workload) instead
	// of the generative model. The file is loaded once at parse time with
	// default replay options; TotalJobs/Duration and any missing VCs are
	// derived from the stream per scenario (see trace.ApplyReplay).
	"workload.trace": func(v string) (func(*core.Config), error) {
		if v == "none" {
			return func(c *core.Config) { c.Workload.Replay = nil }, nil
		}
		specs, err := trace.LoadTraceFile(v, trace.DefaultReplayOptions())
		if err != nil {
			return nil, err
		}
		return func(c *core.Config) {
			// ApplyReplay only errors on an empty stream, which the load
			// above has already excluded.
			_ = trace.ApplyReplay(c, specs)
		}, nil
	},
	// cluster.scale multiplies servers per rack, VC quotas, and the job
	// count by the same factor, holding contention roughly constant.
	"cluster.scale": func(v string) (func(*core.Config), error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("cluster.scale %q: want a positive float", v)
		}
		return func(c *core.Config) {
			// Scenarios clones the rack and VC slices, so in-place element
			// mutation cannot alias other scenarios.
			for i := range c.Cluster.Racks {
				s := int(float64(c.Cluster.Racks[i].Servers)*f + 0.5)
				if s < 1 {
					s = 1
				}
				c.Cluster.Racks[i].Servers = s
			}
			for i := range c.Workload.VCs {
				q := int(float64(c.Workload.VCs[i].QuotaGPUs)*f + 0.5)
				if q < 1 {
					q = 1
				}
				c.Workload.VCs[i].QuotaGPUs = q
			}
			n := int(float64(c.Workload.TotalJobs)*f + 0.5)
			if n < 1 {
				n = 1
			}
			c.Workload.TotalJobs = n
		}, nil
	},
}

// FleetAxisName is the federated-scenario axis: each value is a
// "+"-separated list of member presets (see internal/federation), e.g.
// "philly-small+helios-like", and every scenario runs as one multi-cluster
// study reported per member plus fleet-wide.
const FleetAxisName = "fleet.members"

// KnownAxes lists the axis names ParseAxis accepts, sorted.
func KnownAxes() []string {
	names := make([]string, 0, len(knobs)+1)
	for name := range knobs {
		names = append(names, name)
	}
	names = append(names, FleetAxisName)
	sort.Strings(names)
	return names
}

// parseFleetAxis builds the fleet.members axis: values are member-preset
// lists, validated against the federation preset registry.
func parseFleetAxis(vals string) (Axis, error) {
	ax := Axis{Name: FleetAxisName}
	for _, v := range strings.Split(vals, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		fcfg, err := federation.ParseSpec(0, v)
		if err != nil {
			return Axis{}, fmt.Errorf("sweep: axis %s: %w", FleetAxisName, err)
		}
		members := make([]string, 0, len(fcfg.Members))
		for _, p := range strings.Split(v, "+") {
			if p = strings.TrimSpace(p); p != "" {
				members = append(members, p)
			}
		}
		ax.Values = append(ax.Values, Value{Label: v, Fleet: members})
	}
	if len(ax.Values) == 0 {
		return Axis{}, fmt.Errorf("sweep: axis %q has no values", FleetAxisName)
	}
	return ax, nil
}

// ParseAxis parses a "name=v1,v2,..." axis specification against the knob
// registry, as the philly-sweep CLI accepts it.
func ParseAxis(spec string) (Axis, error) {
	name, vals, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return Axis{}, fmt.Errorf("sweep: axis spec %q: want name=v1,v2,...", spec)
	}
	if name == FleetAxisName {
		return parseFleetAxis(vals)
	}
	parse, ok := knobs[name]
	if !ok {
		return Axis{}, fmt.Errorf("sweep: unknown axis %q (known: %s)", name, strings.Join(KnownAxes(), ", "))
	}
	var ax Axis
	ax.Name = name
	for _, v := range strings.Split(vals, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		apply, err := parse(v)
		if err != nil {
			return Axis{}, fmt.Errorf("sweep: axis %s: %v", name, err)
		}
		ax.Values = append(ax.Values, Value{Label: v, Apply: apply})
	}
	if len(ax.Values) == 0 {
		return Axis{}, fmt.Errorf("sweep: axis %q has no values", name)
	}
	return ax, nil
}

// mixPresets are the named job-size distributions workload.mix accepts,
// besides "default": "small" models a cluster dominated by single-GPU
// experimentation, "large" one dominated by multi-server training gangs.
// "default" is resolved from workload.DefaultConfig so the paper's Table 6
// calibration has exactly one definition.
var mixPresets = map[string]map[int]float64{
	"small": {1: 0.80, 2: 0.10, 4: 0.05, 8: 0.045, 16: 0.005},
	"large": {1: 0.30, 2: 0.15, 4: 0.15, 8: 0.25, 16: 0.09, 24: 0.03, 32: 0.03},
}

// parseMix resolves a workload.mix value: a preset name or an explicit
// "size:weight[;size:weight]..." list.
func parseMix(v string) (map[int]float64, error) {
	if v == "default" {
		return workload.DefaultConfig().SizeWeights, nil
	}
	if w, ok := mixPresets[v]; ok {
		return w, nil
	}
	if !strings.Contains(v, ":") {
		names := []string{"default"}
		for name := range mixPresets {
			names = append(names, name)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("workload.mix %q: want a preset (%s) or size:weight[;...]",
			v, strings.Join(names, ", "))
	}
	weights := map[int]float64{}
	for _, pair := range strings.Split(v, ";") {
		sizeStr, weightStr, ok := strings.Cut(pair, ":")
		if !ok {
			return nil, fmt.Errorf("workload.mix %q: entry %q is not size:weight", v, pair)
		}
		size, err1 := strconv.Atoi(strings.TrimSpace(sizeStr))
		weight, err2 := strconv.ParseFloat(strings.TrimSpace(weightStr), 64)
		if err1 != nil || err2 != nil || size <= 0 || weight < 0 {
			return nil, fmt.Errorf("workload.mix %q: entry %q: want positive size, non-negative weight", v, pair)
		}
		weights[size] = weight
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("workload.mix %q: no entries", v)
	}
	return weights, nil
}

func parseOnOff(v string) (bool, error) {
	switch v {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("%q: want on or off", v)
}
