// Package sweep is the parallel study-sweep harness: it expands named
// configuration axes into a cross-product of core.Config scenarios, runs
// scenario × seed replicas across a worker pool, and folds the replicas
// into per-scenario summaries with confidence intervals.
//
// The paper's headline results are comparisons across configurations
// (queueing delay vs. locality relaxation, utilization with and without
// interference, failure cost with and without adaptive retry), and related
// characterization studies sweep policies and replicate over seeds the same
// way. The harness makes those comparisons one call instead of N
// hand-driven runs — and keeps them trustworthy: per-run seeds are derived
// purely from (baseSeed, scenarioIdx, replicaIdx), so aggregated output is
// bit-identical regardless of worker count or completion order.
package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"philly/internal/cluster"
	"philly/internal/core"
	"philly/internal/scheduler"
	"philly/internal/simulation"
	"philly/internal/workload"
)

// Value is one setting of an axis: a human-readable label plus the config
// mutation it stands for.
type Value struct {
	// Label names the setting in scenario names and tables ("fifo", "on").
	Label string
	// Apply mutates a copy of the base configuration.
	Apply func(*core.Config)
}

// Axis is one named configuration dimension with the values to sweep.
type Axis struct {
	// Name is the axis name ("sched.policy", "defrag").
	Name string
	// Values are the settings to cross with every other axis.
	Values []Value
}

// Matrix is a sweep specification: a base configuration plus the axes whose
// cross-product defines the scenarios.
type Matrix struct {
	// Base is the configuration every scenario starts from. Base.Seed is
	// the default base seed for replica derivation (see Options.BaseSeed).
	Base core.Config
	// Axes are crossed in order; scenario names join "axis=label" pairs.
	Axes []Axis
}

// Scenario is one expanded cell of the matrix.
type Scenario struct {
	// Index is the scenario's position in expansion order (row-major over
	// the axes, first axis slowest). Seed derivation uses it, so scenario
	// order — not completion order — defines the random streams.
	Index int
	// Name joins the axis settings, e.g. "sched.policy=fifo defrag=on".
	// For an empty matrix (no axes) it is "base".
	Name string
	// Labels holds the per-axis value labels in axis order.
	Labels []string
	// Config is the fully-applied configuration (Seed still unset; the
	// runner overwrites it per replica).
	Config core.Config
}

// Scenarios expands the cross-product. An axis with no values is an error:
// it would silently zero the whole product.
func (m Matrix) Scenarios() ([]Scenario, error) {
	for _, ax := range m.Axes {
		if ax.Name == "" {
			return nil, fmt.Errorf("sweep: axis with empty name")
		}
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", ax.Name)
		}
	}
	total := 1
	for _, ax := range m.Axes {
		total *= len(ax.Values)
	}
	scenarios := make([]Scenario, 0, total)
	idx := make([]int, len(m.Axes))
	for i := 0; i < total; i++ {
		cfg := cloneConfig(m.Base)
		labels := make([]string, len(m.Axes))
		parts := make([]string, len(m.Axes))
		for a, ax := range m.Axes {
			v := ax.Values[idx[a]]
			v.Apply(&cfg)
			labels[a] = v.Label
			parts[a] = ax.Name + "=" + v.Label
		}
		name := strings.Join(parts, " ")
		if name == "" {
			name = "base"
		}
		scenarios = append(scenarios, Scenario{
			Index:  i,
			Name:   name,
			Labels: labels,
			Config: cfg,
		})
		// Odometer increment, last axis fastest.
		for a := len(idx) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(m.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
	}
	return scenarios, nil
}

// cloneConfig copies the base configuration deeply enough that an Apply
// mutating any reference-typed field — rack sizes, VC quotas, the job-size
// weight map — cannot alias across scenarios. core.Config's only other
// nested fields are value types.
func cloneConfig(c core.Config) core.Config {
	c.Cluster.Racks = append([]cluster.RackConfig(nil), c.Cluster.Racks...)
	c.Workload.VCs = append([]workload.VirtualCluster(nil), c.Workload.VCs...)
	if c.Workload.SizeWeights != nil {
		w := make(map[int]float64, len(c.Workload.SizeWeights))
		for k, v := range c.Workload.SizeWeights {
			w[k] = v
		}
		c.Workload.SizeWeights = w
	}
	return c
}

// axisParser builds the Apply function for one value of a named knob.
type axisParser func(value string) (func(*core.Config), error)

// knobs is the registry of axis names ParseAxis understands. Each knob
// parses one comma-separated value into a config mutation.
var knobs = map[string]axisParser{
	"sched.policy": func(v string) (func(*core.Config), error) {
		var p scheduler.Policy
		switch v {
		case "philly":
			p = scheduler.PolicyPhilly
		case "fifo":
			p = scheduler.PolicyFIFO
		case "srtf":
			p = scheduler.PolicySRTF
		case "tiresias":
			p = scheduler.PolicyTiresias
		case "gandiva":
			p = scheduler.PolicyGandiva
		default:
			return nil, fmt.Errorf("unknown policy %q (want philly, fifo, srtf, tiresias or gandiva)", v)
		}
		return func(c *core.Config) { c.Scheduler.Policy = p }, nil
	},
	"defrag": func(v string) (func(*core.Config), error) {
		on, err := parseOnOff(v)
		if err != nil {
			return nil, err
		}
		return func(c *core.Config) { c.Defrag.Enabled = on }, nil
	},
	"adaptive-retry": func(v string) (func(*core.Config), error) {
		on, err := parseOnOff(v)
		if err != nil {
			return nil, err
		}
		return func(c *core.Config) { c.AdaptiveRetry = on }, nil
	},
	"checkpoint.retention": func(v string) (func(*core.Config), error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("checkpoint.retention %q: %v", v, err)
		}
		return func(c *core.Config) { c.CheckpointRetention = f }, nil
	},
	"sched.backoff-min": func(v string) (func(*core.Config), error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("sched.backoff-min %q: %v", v, err)
		}
		return func(c *core.Config) { c.Scheduler.Backoff = simulation.FromMinutes(f) }, nil
	},
	// locality.relax takes "rack:any" attempt thresholds, e.g. "4:8";
	// "0:0" is the impatient scheduler that relaxes immediately.
	"locality.relax": func(v string) (func(*core.Config), error) {
		rack, any, ok := strings.Cut(v, ":")
		if !ok {
			return nil, fmt.Errorf("locality.relax %q: want rackAfter:anyAfter", v)
		}
		r, err1 := strconv.Atoi(rack)
		a, err2 := strconv.Atoi(any)
		if err1 != nil || err2 != nil || r < 0 || a < 0 {
			return nil, fmt.Errorf("locality.relax %q: want two non-negative ints", v)
		}
		return func(c *core.Config) {
			c.Scheduler.RelaxToRackAfter = r
			c.Scheduler.RelaxToAnyAfter = a
		}, nil
	},
	"jobs": func(v string) (func(*core.Config), error) {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("jobs %q: want a positive int", v)
		}
		return func(c *core.Config) { c.Workload.TotalJobs = n }, nil
	},
	// cluster.scale multiplies servers per rack, VC quotas, and the job
	// count by the same factor, holding contention roughly constant.
	"cluster.scale": func(v string) (func(*core.Config), error) {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("cluster.scale %q: want a positive float", v)
		}
		return func(c *core.Config) {
			// Scenarios clones the rack and VC slices, so in-place element
			// mutation cannot alias other scenarios.
			for i := range c.Cluster.Racks {
				s := int(float64(c.Cluster.Racks[i].Servers)*f + 0.5)
				if s < 1 {
					s = 1
				}
				c.Cluster.Racks[i].Servers = s
			}
			for i := range c.Workload.VCs {
				q := int(float64(c.Workload.VCs[i].QuotaGPUs)*f + 0.5)
				if q < 1 {
					q = 1
				}
				c.Workload.VCs[i].QuotaGPUs = q
			}
			n := int(float64(c.Workload.TotalJobs)*f + 0.5)
			if n < 1 {
				n = 1
			}
			c.Workload.TotalJobs = n
		}, nil
	},
}

// KnownAxes lists the axis names ParseAxis accepts, sorted.
func KnownAxes() []string {
	names := make([]string, 0, len(knobs))
	for name := range knobs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParseAxis parses a "name=v1,v2,..." axis specification against the knob
// registry, as the philly-sweep CLI accepts it.
func ParseAxis(spec string) (Axis, error) {
	name, vals, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return Axis{}, fmt.Errorf("sweep: axis spec %q: want name=v1,v2,...", spec)
	}
	parse, ok := knobs[name]
	if !ok {
		return Axis{}, fmt.Errorf("sweep: unknown axis %q (known: %s)", name, strings.Join(KnownAxes(), ", "))
	}
	var ax Axis
	ax.Name = name
	for _, v := range strings.Split(vals, ",") {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		apply, err := parse(v)
		if err != nil {
			return Axis{}, fmt.Errorf("sweep: axis %s: %v", name, err)
		}
		ax.Values = append(ax.Values, Value{Label: v, Apply: apply})
	}
	if len(ax.Values) == 0 {
		return Axis{}, fmt.Errorf("sweep: axis %q has no values", name)
	}
	return ax, nil
}

func parseOnOff(v string) (bool, error) {
	switch v {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	}
	return false, fmt.Errorf("%q: want on or off", v)
}
