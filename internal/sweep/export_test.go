package sweep

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"philly/internal/core"
)

// runSmallSweep produces a real Result to round-trip.
func runSmallSweep(t *testing.T) *Result {
	t.Helper()
	base := core.SmallConfig()
	base.Workload.TotalJobs = 150
	base.Workload.Duration /= 8
	ax, err := ParseAxis("sched.policy=philly,fifo")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Matrix{Base: base, Axes: []Axis{ax}}.Run(Options{Replicas: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExportRoundTrip(t *testing.T) {
	res := runSmallSweep(t)

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if got.Replicas != res.Replicas || got.BaseSeed != res.BaseSeed {
		t.Fatalf("header mismatch: got %d/%d want %d/%d",
			got.Replicas, got.BaseSeed, res.Replicas, res.BaseSeed)
	}
	if len(got.Scenarios) != len(res.Scenarios) {
		t.Fatalf("scenario count = %d, want %d", len(got.Scenarios), len(res.Scenarios))
	}
	for i := range res.Scenarios {
		want, have := &res.Scenarios[i], &got.Scenarios[i]
		if have.Scenario.Name != want.Scenario.Name || have.Scenario.Index != want.Scenario.Index {
			t.Errorf("scenario %d identity mismatch: %+v vs %+v", i, have.Scenario, want.Scenario)
		}
		if !reflect.DeepEqual(have.Scenario.Labels, want.Scenario.Labels) {
			t.Errorf("scenario %d labels = %v, want %v", i, have.Scenario.Labels, want.Scenario.Labels)
		}
		if !reflect.DeepEqual(have.Scenario.Config, want.Scenario.Config) {
			t.Errorf("scenario %d config did not round-trip", i)
		}
		if !reflect.DeepEqual(have.Replicas, want.Replicas) {
			t.Errorf("scenario %d replica metrics did not round-trip exactly:\n got %+v\nwant %+v",
				i, have.Replicas, want.Replicas)
		}
		if !reflect.DeepEqual(have.Summary, want.Summary) {
			t.Errorf("scenario %d summary did not round-trip exactly", i)
		}
	}

	// The decoded result renders the same comparison table.
	if got.RenderTable() != res.RenderTable() {
		t.Error("decoded result renders a different table")
	}
}

// TestExportNaNEncodesAsNull pins the null convention for undefined metrics.
func TestExportNaNEncodesAsNull(t *testing.T) {
	res := &Result{
		Replicas: 1,
		BaseSeed: 7,
		Scenarios: []ScenarioResult{{
			Scenario: Scenario{Name: "base"},
			Replicas: []ReplicaMetrics{{Seed: 1, JCTp50: math.NaN()}},
			Summary:  Summarize([]ReplicaMetrics{{Seed: 1, JCTp50: math.NaN()}}),
		}},
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatalf("NaN metrics must encode: %v", err)
	}
	if !strings.Contains(buf.String(), "\"jct_p50_min\": null") {
		t.Error("NaN did not encode as null")
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Scenarios[0].Replicas[0].JCTp50) {
		t.Errorf("null did not decode back to NaN: %v", got.Scenarios[0].Replicas[0].JCTp50)
	}
}

func TestDecodeRejectsUnknownVersion(t *testing.T) {
	if _, err := DecodeJSON(strings.NewReader(`{"format_version": 99}`)); err == nil {
		t.Fatal("expected an error for unknown format version")
	}
}

// TestExportReliabilityColumnsRoundTrip pins the PR-7 export additions:
// the five reliability metrics round-trip through WriteJSON/DecodeJSON
// exactly, NaN values take the null path, and a faults-off replica (all
// five at their zero values) omits the keys entirely — so older exports,
// which predate the fields, decode to the same bytes a faults-off run
// produces today.
func TestExportReliabilityColumnsRoundTrip(t *testing.T) {
	faulty := ReplicaMetrics{
		Seed: 3, Jobs: 10, Completed: 9,
		LostGPUHours: 123.25, CkptOverheadPct: 2.5,
		ETTFHours: 18.75, ETTRHours: 0.5, ImbalancePct: 1.125,
	}
	undefined := ReplicaMetrics{
		Seed: 4, Jobs: 10, Completed: 0,
		LostGPUHours: 55.5, ETTFHours: math.NaN(), ETTRHours: math.NaN(),
	}
	clean := ReplicaMetrics{Seed: 5, Jobs: 10, Completed: 10}
	res := &Result{
		Replicas: 3,
		BaseSeed: 11,
		Scenarios: []ScenarioResult{{
			Scenario: Scenario{Name: "base"},
			Replicas: []ReplicaMetrics{faulty, undefined, clean},
			Summary:  Summarize([]ReplicaMetrics{faulty, undefined, clean}),
		}},
	}

	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	for _, key := range []string{
		"\"lost_gpu_hours\": 123.25", "\"ckpt_overhead_pct\": 2.5",
		"\"ettf_hours\": 18.75", "\"ettr_hours\": 0.5", "\"imbalance_pct\": 1.125",
	} {
		if !strings.Contains(raw, key) {
			t.Errorf("export missing %s", key)
		}
	}
	if !strings.Contains(raw, "\"ettf_hours\": null") {
		t.Error("NaN ETTF did not encode as null")
	}

	got, err := DecodeJSON(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	reps := got.Scenarios[0].Replicas
	if !reflect.DeepEqual(reps[0], faulty) {
		t.Errorf("faulty replica did not round-trip: %+v", reps[0])
	}
	if !math.IsNaN(reps[1].ETTFHours) || !math.IsNaN(reps[1].ETTRHours) {
		t.Errorf("null did not decode back to NaN: %+v", reps[1])
	}
	if reps[1].LostGPUHours != 55.5 {
		t.Errorf("lost GPU-hours lost precision: %v", reps[1].LostGPUHours)
	}
	if !reflect.DeepEqual(reps[2], clean) {
		t.Errorf("clean replica did not round-trip: %+v", reps[2])
	}

	// Backward/forward compatibility: the clean replica's export must not
	// mention the reliability keys at all (omitempty), so a pre-PR-7 file
	// decodes identically to a faults-off run.
	cleanOnly := &Result{
		Replicas: 1, BaseSeed: 11,
		Scenarios: []ScenarioResult{{
			Scenario: Scenario{Name: "base"},
			Replicas: []ReplicaMetrics{clean},
			Summary:  Summarize([]ReplicaMetrics{clean}),
		}},
	}
	buf.Reset()
	if err := cleanOnly.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"lost_gpu_hours", "ckpt_overhead_pct", "ettf_hours", "ettr_hours", "imbalance_pct"} {
		if strings.Contains(buf.String(), key) {
			t.Errorf("faults-off export emits %s; omitempty contract broken", key)
		}
	}
}

// TestExportSchedulerCountersRoundTrip pins the PR-9 export additions: the
// four placement-search counters round-trip exactly and are omitted when
// zero, so older exports decode unchanged and the format version stays 1.
func TestExportSchedulerCountersRoundTrip(t *testing.T) {
	busy := ReplicaMetrics{
		Seed: 7, Jobs: 20, Completed: 18,
		PlacementSearches: 1234, CacheShortCircuits: 987,
		SpeculativeCommits: 456, SpeculativeConflicts: 3,
	}
	idle := ReplicaMetrics{Seed: 8, Jobs: 20, Completed: 20}
	res := &Result{
		Replicas: 2,
		BaseSeed: 13,
		Scenarios: []ScenarioResult{{
			Scenario: Scenario{Name: "base"},
			Replicas: []ReplicaMetrics{busy, idle},
			Summary:  Summarize([]ReplicaMetrics{busy, idle}),
		}},
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	for _, key := range []string{
		"\"placement_searches\": 1234", "\"cache_short_circuits\": 987",
		"\"speculative_commits\": 456", "\"speculative_conflicts\": 3",
	} {
		if !strings.Contains(raw, key) {
			t.Errorf("export missing %s", key)
		}
	}
	got, err := DecodeJSON(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	reps := got.Scenarios[0].Replicas
	if !reflect.DeepEqual(reps[0], busy) || !reflect.DeepEqual(reps[1], idle) {
		t.Errorf("scheduler counters did not round-trip: %+v %+v", reps[0], reps[1])
	}

	zeroOnly := &Result{
		Replicas: 1, BaseSeed: 13,
		Scenarios: []ScenarioResult{{
			Scenario: Scenario{Name: "base"},
			Replicas: []ReplicaMetrics{idle},
			Summary:  Summarize([]ReplicaMetrics{idle}),
		}},
	}
	buf.Reset()
	if err := zeroOnly.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"placement_searches", "cache_short_circuits", "speculative_commits", "speculative_conflicts"} {
		if strings.Contains(buf.String(), key) {
			t.Errorf("zero-counter export emits %s; omitempty contract broken", key)
		}
	}
}
