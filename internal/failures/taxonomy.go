// Package failures implements the paper's failure model (§4.2): the
// 22-reason taxonomy of Table 7 with per-reason category flags
// (Infrastructure / AI Engine / User), occurrence frequency, runtime-to-
// failure (RTF) distributions, GPU-demand profiles, and determinism; a
// failure planner that dooms jobs consistently with those statistics; and
// the retry policy Philly applies before marking a job unsuccessful.
//
// The published Table 7 aggregates are the generative spec: the planner
// draws from distributions fit to the paper's numbers, and the analysis
// pipeline (internal/analysis) re-derives the table from simulated events,
// closing the loop.
package failures

import (
	"fmt"

	"philly/internal/stats"
)

// Category is a bitmask of the layers a failure reason can originate from
// (Table 7 columns IF / AE / U). A reason may belong to several categories.
type Category uint8

const (
	// Infrastructure covers YARN, HDFS and other framework components.
	Infrastructure Category = 1 << iota
	// AIEngine covers TensorFlow, Torch, CNTK and other platforms.
	AIEngine
	// User covers programmer errors in code or configuration.
	User
)

// Has reports whether c includes the given category bit.
func (c Category) Has(bit Category) bool { return c&bit != 0 }

// String renders the category set as e.g. "IF|AE|U".
func (c Category) String() string {
	s := ""
	if c.Has(Infrastructure) {
		s += "IF|"
	}
	if c.Has(AIEngine) {
		s += "AE|"
	}
	if c.Has(User) {
		s += "U|"
	}
	if s == "" {
		return "-"
	}
	return s[:len(s)-1]
}

// DemandBucket indexes the paper's GPU-demand columns in Table 7.
type DemandBucket int

const (
	// Demand1 is 1-GPU jobs.
	Demand1 DemandBucket = iota
	// Demand2to4 is 2-4 GPU jobs.
	Demand2to4
	// DemandOver4 is >4 GPU jobs.
	DemandOver4
	// NumDemandBuckets is the bucket count.
	NumDemandBuckets
)

// BucketFor maps a GPU count to its Table 7 demand bucket.
func BucketFor(gpus int) DemandBucket {
	switch {
	case gpus <= 1:
		return Demand1
	case gpus <= 4:
		return Demand2to4
	default:
		return DemandOver4
	}
}

// String names the bucket as the paper prints it.
func (b DemandBucket) String() string {
	switch b {
	case Demand1:
		return "1"
	case Demand2to4:
		return "2-4"
	case DemandOver4:
		return ">4"
	default:
		return "?"
	}
}

// Reason is one failure class from Table 7 plus the generative parameters
// needed to simulate it.
type Reason struct {
	// Code is the stable machine key (snake_case).
	Code string
	// Name is the human-readable name as printed in Table 7.
	Name string
	// Categories are the layers this reason is observed in.
	Categories Category
	// TrialWeight is the relative occurrence frequency (Table 7 "Trial").
	TrialWeight float64
	// PaperJobs and PaperUsers are Table 7's Job and User counts, kept for
	// calibration targets in EXPERIMENTS.md.
	PaperJobs, PaperUsers float64
	// RTFMedianMin / RTFP90Min / RTFP95Min are the paper's runtime-to-
	// failure percentiles in minutes; the first two parameterize the
	// sampling distribution, the third is a validation target.
	RTFMedianMin, RTFP90Min, RTFP95Min float64
	// DemandWeights are the per-bucket occurrence counts (Table 7 column
	// "GPU Demand": 1 / 2-4 / >4).
	DemandWeights [NumDemandBuckets]float64
	// Deterministic marks reasons that re-occur on every retry of the same
	// job (user code and config errors); transient reasons may pass on
	// retry.
	Deterministic bool
	// DemandRTFSlope, when non-zero, tilts sampled RTFs with GPU demand:
	// the log-RTF gets +slope*ln(gpus) (recentred), reproducing Figure 10's
	// observation that semantic errors on high-demand jobs fail late.
	DemandRTFSlope float64

	rtf stats.LogNormalSpec
}

// Reason codes, exported so other packages can refer to specific rows.
const (
	CodeCPUOOM           = "cpu_oom"
	CodeIncorrectInputs  = "incorrect_inputs"
	CodeSemanticError    = "semantic_error"
	CodeCoreDump         = "core_dump"
	CodeInvalidMemAccess = "invalid_mem_access"
	CodeModelCkptError   = "model_ckpt_error"
	CodeCUDAFailure      = "cuda_failure"
	CodeSyntaxError      = "syntax_error"
	CodeTraceback        = "traceback_from_crash"
	CodeMPIError         = "mpi_error"
	CodeGPUOOM           = "gpu_oom"
	CodeMPIRuntime       = "mpi_runtime_failure"
	CodePermissionError  = "permission_error"
	CodeImportError      = "import_error"
	CodeJobPreempted     = "job_preempted"
	CodeCUDAInitFailed   = "cuda_init_failed"
	CodeModelDiverged    = "model_diverged"
	CodeCUDAVerMismatch  = "cuda_ver_mismatch"
	CodeGPUECCError      = "gpu_ecc_error"
	CodeOutputNodeError  = "output_node_error"
	CodeCannotLoadLibs   = "cannot_load_libs"
	// CodeNoSignature is the classifier's fallback; it is not a planned
	// reason but appears when a failure log carries no recognizable
	// signature.
	CodeNoSignature = "no_signature"
)

// Taxonomy returns the full Table 7 reason list with calibrated parameters.
// The slice is freshly allocated; callers may reorder it.
func Taxonomy() []Reason {
	rs := []Reason{
		{
			Code: CodeCPUOOM, Name: "CPU out of memory",
			Categories:  AIEngine | User,
			TrialWeight: 12076, PaperJobs: 2803, PaperUsers: 65,
			RTFMedianMin: 13.45, RTFP90Min: 17.73, RTFP95Min: 33.97,
			DemandWeights: [NumDemandBuckets]float64{11465, 235, 376},
			Deterministic: true,
		},
		{
			Code: CodeIncorrectInputs, Name: "Incorrect inputs",
			Categories:  AIEngine | User,
			TrialWeight: 9690, PaperJobs: 4936, PaperUsers: 208,
			RTFMedianMin: 1.87, RTFP90Min: 404.83, RTFP95Min: 2095.73,
			DemandWeights:  [NumDemandBuckets]float64{5844, 2638, 1208},
			Deterministic:  true,
			DemandRTFSlope: -0.4,
		},
		{
			Code: CodeSemanticError, Name: "Semantic error",
			Categories:  AIEngine | User,
			TrialWeight: 2943, PaperJobs: 2049, PaperUsers: 159,
			RTFMedianMin: 2.72, RTFP90Min: 376.00, RTFP95Min: 1436.88,
			DemandWeights:  [NumDemandBuckets]float64{1603, 494, 846},
			Deterministic:  true,
			DemandRTFSlope: 0.5,
		},
		{
			Code: CodeCoreDump, Name: "Core dump",
			Categories:  AIEngine | User,
			TrialWeight: 2912, PaperJobs: 1784, PaperUsers: 122,
			RTFMedianMin: 0.85, RTFP90Min: 72.75, RTFP95Min: 431.65,
			DemandWeights: [NumDemandBuckets]float64{1936, 496, 480},
			Deterministic: true,
		},
		{
			Code: CodeInvalidMemAccess, Name: "Invalid mem access",
			Categories:  User,
			TrialWeight: 2602, PaperJobs: 1235, PaperUsers: 108,
			RTFMedianMin: 1.03, RTFP90Min: 403.50, RTFP95Min: 1357.38,
			DemandWeights:  [NumDemandBuckets]float64{712, 774, 1116},
			Deterministic:  true,
			DemandRTFSlope: -0.3,
		},
		{
			Code: CodeModelCkptError, Name: "Model ckpt error",
			Categories:  Infrastructure,
			TrialWeight: 1995, PaperJobs: 948, PaperUsers: 85,
			RTFMedianMin: 181.67, RTFP90Min: 3728.93, RTFP95Min: 8196.02,
			DemandWeights:  [NumDemandBuckets]float64{743, 384, 868},
			Deterministic:  false,
			DemandRTFSlope: -0.4,
		},
		{
			Code: CodeCUDAFailure, Name: "CUDA failure",
			Categories:  AIEngine,
			TrialWeight: 1484, PaperJobs: 571, PaperUsers: 70,
			RTFMedianMin: 1.32, RTFP90Min: 19.87, RTFP95Min: 82.17,
			DemandWeights: [NumDemandBuckets]float64{133, 1153, 198},
			Deterministic: false,
		},
		{
			Code: CodeSyntaxError, Name: "Syntax error",
			Categories:  AIEngine | User,
			TrialWeight: 1132, PaperJobs: 883, PaperUsers: 110,
			RTFMedianMin: 0.58, RTFP90Min: 5.02, RTFP95Min: 12.00,
			DemandWeights: [NumDemandBuckets]float64{780, 184, 168},
			Deterministic: true,
		},
		{
			Code: CodeTraceback, Name: "Traceback from crash",
			Categories:  Infrastructure | AIEngine | User,
			TrialWeight: 777, PaperJobs: 271, PaperUsers: 44,
			RTFMedianMin: 1.02, RTFP90Min: 894.33, RTFP95Min: 1394.07,
			DemandWeights: [NumDemandBuckets]float64{356, 277, 144},
			Deterministic: true,
		},
		{
			Code: CodeMPIError, Name: "MPI error",
			Categories:  AIEngine,
			TrialWeight: 634, PaperJobs: 166, PaperUsers: 28,
			RTFMedianMin: 1.62, RTFP90Min: 3015.27, RTFP95Min: 5143.98,
			DemandWeights: [NumDemandBuckets]float64{456, 54, 124},
			Deterministic: false,
		},
		{
			Code: CodeGPUOOM, Name: "GPU out of memory",
			Categories:  User,
			TrialWeight: 487, PaperJobs: 261, PaperUsers: 35,
			RTFMedianMin: 18.53, RTFP90Min: 353.62, RTFP95Min: 2740.28,
			DemandWeights: [NumDemandBuckets]float64{237, 70, 180},
			Deterministic: true,
		},
		{
			Code: CodeMPIRuntime, Name: "MPI runtime failure",
			Categories:  Infrastructure,
			TrialWeight: 478, PaperJobs: 420, PaperUsers: 96,
			RTFMedianMin: 1389.48, RTFP90Min: 13778.60, RTFP95Min: 18090.88,
			DemandWeights:  [NumDemandBuckets]float64{240, 141, 97},
			Deterministic:  false,
			DemandRTFSlope: -0.4,
		},
		{
			Code: CodePermissionError, Name: "Permission error",
			Categories:  Infrastructure,
			TrialWeight: 299, PaperJobs: 151, PaperUsers: 37,
			RTFMedianMin: 1.00, RTFP90Min: 8.15, RTFP95Min: 15.85,
			DemandWeights: [NumDemandBuckets]float64{56, 202, 41},
			Deterministic: true,
		},
		{
			Code: CodeImportError, Name: "Import error",
			Categories:  AIEngine | User,
			TrialWeight: 148, PaperJobs: 148, PaperUsers: 41,
			RTFMedianMin: 0.67, RTFP90Min: 4.58, RTFP95Min: 10.73,
			DemandWeights: [NumDemandBuckets]float64{108, 30, 10},
			Deterministic: true,
		},
		{
			Code: CodeJobPreempted, Name: "Job preempted",
			Categories:  Infrastructure,
			TrialWeight: 147, PaperJobs: 95, PaperUsers: 34,
			RTFMedianMin: 559.08, RTFP90Min: 2682.85, RTFP95Min: 5892.23,
			DemandWeights: [NumDemandBuckets]float64{25, 95, 27},
			Deterministic: false,
		},
		{
			Code: CodeCUDAInitFailed, Name: "CUDA init failed",
			Categories:  Infrastructure,
			TrialWeight: 141, PaperJobs: 69, PaperUsers: 20,
			RTFMedianMin: 1.08, RTFP90Min: 2.18, RTFP95Min: 4.63,
			DemandWeights: [NumDemandBuckets]float64{16, 66, 59},
			Deterministic: false,
		},
		{
			Code: CodeModelDiverged, Name: "Model diverged",
			Categories:  User,
			TrialWeight: 84, PaperJobs: 30, PaperUsers: 5,
			RTFMedianMin: 1.48, RTFP90Min: 44.37, RTFP95Min: 76.53,
			DemandWeights: [NumDemandBuckets]float64{78, 5, 1},
			Deterministic: true,
		},
		{
			Code: CodeCUDAVerMismatch, Name: "CUDA ver. mismatch",
			Categories:  Infrastructure,
			TrialWeight: 49, PaperJobs: 49, PaperUsers: 19,
			RTFMedianMin: 0.83, RTFP90Min: 1.65, RTFP95Min: 1.67,
			DemandWeights: [NumDemandBuckets]float64{1, 1, 47},
			Deterministic: true,
		},
		{
			Code: CodeGPUECCError, Name: "GPU ECC error",
			Categories:  Infrastructure,
			TrialWeight: 10, PaperJobs: 10, PaperUsers: 2,
			RTFMedianMin: 26.82, RTFP90Min: 671.92, RTFP95Min: 2035.02,
			DemandWeights: [NumDemandBuckets]float64{1, 5, 4},
			Deterministic: false,
		},
		{
			Code: CodeOutputNodeError, Name: "Output node error",
			Categories:  Infrastructure | AIEngine | User,
			TrialWeight: 3, PaperJobs: 3, PaperUsers: 1,
			RTFMedianMin: 0.85, RTFP90Min: 0.95, RTFP95Min: 0.95,
			DemandWeights: [NumDemandBuckets]float64{3, 0.01, 0.01},
			Deterministic: true,
		},
		{
			Code: CodeCannotLoadLibs, Name: "Cannot load libs",
			Categories:  Infrastructure,
			TrialWeight: 1, PaperJobs: 1, PaperUsers: 1,
			RTFMedianMin: 0.12, RTFP90Min: 0.12, RTFP95Min: 0.12,
			DemandWeights: [NumDemandBuckets]float64{1, 0.01, 0.01},
			Deterministic: true,
		},
	}
	for i := range rs {
		spec, err := stats.LogNormalFromQuantiles(rs[i].RTFMedianMin, 0.9, rs[i].RTFP90Min)
		if err != nil {
			// Taxonomy data is static; an error here is a programming bug.
			panic(fmt.Sprintf("failures: bad RTF quantiles for %s: %v", rs[i].Code, err))
		}
		rs[i].rtf = spec
	}
	return rs
}

// ByCode returns the taxonomy indexed by reason code.
func ByCode() map[string]*Reason {
	tax := Taxonomy()
	m := make(map[string]*Reason, len(tax))
	for i := range tax {
		m[tax[i].Code] = &tax[i]
	}
	return m
}

// RTFSpec exposes the fitted log-normal RTF distribution (minutes).
func (r *Reason) RTFSpec() stats.LogNormalSpec { return r.rtf }
