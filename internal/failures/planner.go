package failures

import (
	"fmt"
	"math"

	"philly/internal/stats"
)

// Outcome is a job's final status (paper §2.3: passed, killed, or
// unsuccessful).
type Outcome int

const (
	// Passed means the job completed successfully.
	Passed Outcome = iota
	// Killed means the user terminated the job.
	Killed
	// Unsuccessful means the job failed and exhausted its retries.
	Unsuccessful
)

// String names the outcome as the paper prints it.
func (o Outcome) String() string {
	switch o {
	case Passed:
		return "Passed"
	case Killed:
		return "Killed"
	case Unsuccessful:
		return "Unsuccessful"
	default:
		return "Unknown"
	}
}

// SizeBucket indexes the paper's four job-size classes used in Figures 2, 3
// and 9: 1, 2-4, 5-8, and >8 GPUs.
type SizeBucket int

const (
	// Size1 is 1-GPU jobs.
	Size1 SizeBucket = iota
	// Size2to4 is 2-4 GPU jobs.
	Size2to4
	// Size5to8 is 5-8 GPU jobs.
	Size5to8
	// SizeOver8 is >8 GPU jobs.
	SizeOver8
	// NumSizeBuckets is the bucket count.
	NumSizeBuckets
)

// SizeBucketFor maps a GPU count to its size bucket.
func SizeBucketFor(gpus int) SizeBucket {
	switch {
	case gpus <= 1:
		return Size1
	case gpus <= 4:
		return Size2to4
	case gpus <= 8:
		return Size5to8
	default:
		return SizeOver8
	}
}

// String names the bucket as the paper prints it.
func (b SizeBucket) String() string {
	switch b {
	case Size1:
		return "1 GPU"
	case Size2to4:
		return "2-4 GPU"
	case Size5to8:
		return "5-8 GPU"
	case SizeOver8:
		return ">8 GPU"
	default:
		return "?"
	}
}

// AttemptPlan describes one execution attempt of a job. A nil Reason means
// the attempt runs to its natural end (success, or user kill).
type AttemptPlan struct {
	// Reason is the failure hit by this attempt, or nil.
	Reason *Reason
	// RTFMinutes is the attempt's runtime-to-failure in minutes; it is only
	// meaningful when Reason is non-nil.
	RTFMinutes float64
}

// Failed reports whether the attempt ends in a failure.
func (a AttemptPlan) Failed() bool { return a.Reason != nil }

// JobPlan is the failure-model decision for one job, fixed at submission:
// final outcome, the sequence of failed attempts preceding it, and — for
// killed jobs — when the user gives up.
type JobPlan struct {
	// Outcome is the final status.
	Outcome Outcome
	// FailedAttempts lists attempts that end in failure, in order. For a
	// Passed or Killed job these are transient failures overcome by retry;
	// for an Unsuccessful job the last one is the final failure.
	FailedAttempts []AttemptPlan
	// KillFraction, for Killed jobs, is the fraction of the configured
	// training work after which the user terminates the job.
	KillFraction float64
}

// Retries returns the number of re-executions the scheduler performs: every
// failed attempt except (for unsuccessful jobs) the last one triggers one
// retry... more precisely, retries = number of failed attempts that were
// followed by another attempt.
func (p JobPlan) Retries() int {
	switch p.Outcome {
	case Unsuccessful:
		if len(p.FailedAttempts) == 0 {
			return 0
		}
		return len(p.FailedAttempts) - 1
	default:
		return len(p.FailedAttempts)
	}
}

// TotalAttempts returns the number of executions the job makes in total.
func (p JobPlan) TotalAttempts() int {
	switch p.Outcome {
	case Unsuccessful:
		return len(p.FailedAttempts)
	default:
		return len(p.FailedAttempts) + 1
	}
}

// PlannerConfig calibrates the failure model. Defaults reproduce the paper's
// aggregates: Table 6's status mix (69.3 / 13.5 / 17.2%), Figure 9's
// size-dependent retry and unsuccessful rates, and Table 7's reason mix.
type PlannerConfig struct {
	// UnsuccessfulProb is P(job ends unsuccessful) per size bucket. Larger
	// jobs fail more (Figure 9b).
	UnsuccessfulProb [NumSizeBuckets]float64
	// KilledProb is P(job is killed by user) per size bucket.
	KilledProb [NumSizeBuckets]float64
	// TransientFailureProb is P(a passed/killed job suffers at least one
	// transient failure that is overcome by retry), per size bucket.
	TransientFailureProb [NumSizeBuckets]float64
	// MaxRetries is Philly's fixed retry budget: an unsuccessful job makes
	// MaxRetries+1 attempts before being marked unsuccessful.
	MaxRetries int
	// UserFavoriteBias is the probability that a doomed job of an
	// error-prone user hits that user's characteristic reason instead of a
	// freshly sampled one. This concentrates failures per user, reproducing
	// Table 7's high Trial/User repetition factors (38.8 on average, 185.7
	// for CPU OOM).
	UserFavoriteBias float64
	// NoSignatureWeight is the trial weight of failures whose logs carry no
	// recognizable signature (Table 7's "No signature" row, 1684 trials).
	NoSignatureWeight float64
}

// DefaultPlannerConfig returns the calibrated defaults.
func DefaultPlannerConfig() PlannerConfig {
	return PlannerConfig{
		UnsuccessfulProb:     [NumSizeBuckets]float64{0.14, 0.17, 0.28, 0.35},
		KilledProb:           [NumSizeBuckets]float64{0.125, 0.15, 0.17, 0.18},
		TransientFailureProb: [NumSizeBuckets]float64{0.04, 0.10, 0.22, 0.30},
		MaxRetries:           2,
		UserFavoriteBias:     0.55,
		NoSignatureWeight:    1684,
	}
}

// Validate checks the configuration.
func (c PlannerConfig) Validate() error {
	for b := 0; b < int(NumSizeBuckets); b++ {
		u, k := c.UnsuccessfulProb[b], c.KilledProb[b]
		if u < 0 || k < 0 || u+k > 1 {
			return fmt.Errorf("failures: bucket %d has unsuccessful=%v killed=%v (must be >=0 and sum <=1)", b, u, k)
		}
		if c.TransientFailureProb[b] < 0 || c.TransientFailureProb[b] > 1 {
			return fmt.Errorf("failures: bucket %d transient prob %v out of range", b, c.TransientFailureProb[b])
		}
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("failures: MaxRetries must be >= 0, got %d", c.MaxRetries)
	}
	if c.UserFavoriteBias < 0 || c.UserFavoriteBias > 1 {
		return fmt.Errorf("failures: UserFavoriteBias %v out of range", c.UserFavoriteBias)
	}
	if c.NoSignatureWeight < 0 {
		return fmt.Errorf("failures: NoSignatureWeight must be >= 0, got %v", c.NoSignatureWeight)
	}
	return nil
}

// Planner samples job failure plans consistent with the taxonomy.
type Planner struct {
	cfg      PlannerConfig
	reasons  []Reason // taxonomy + no-signature pseudo-reason
	noSig    *Reason
	byBucket [NumDemandBuckets]*stats.Categorical // reason choice per demand bucket
	// transientByBucket restricts to non-deterministic reasons for retryable
	// transient failures.
	transientByBucket [NumDemandBuckets]*stats.Categorical
	transientIdx      []int
	meanGPUs          float64
}

// NewPlanner builds a planner from the configuration.
func NewPlanner(cfg PlannerConfig) (*Planner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Planner{cfg: cfg, reasons: Taxonomy(), meanGPUs: 2.5}
	// Append the no-signature pseudo-reason so that it participates in
	// planning like any other failure class (its logs simply carry no
	// recognizable signature).
	noSig := Reason{
		Code: CodeNoSignature, Name: "No signature",
		TrialWeight: cfg.NoSignatureWeight, PaperJobs: 698, PaperUsers: 94,
		RTFMedianMin: 1.87, RTFP90Min: 28.00, RTFP95Min: 95.17,
		DemandWeights: [NumDemandBuckets]float64{1235, 294, 155},
		Deterministic: false,
	}
	spec, err := stats.LogNormalFromQuantiles(noSig.RTFMedianMin, 0.9, noSig.RTFP90Min)
	if err != nil {
		return nil, fmt.Errorf("failures: no-signature RTF: %w", err)
	}
	noSig.rtf = spec
	p.reasons = append(p.reasons, noSig)
	p.noSig = &p.reasons[len(p.reasons)-1]

	for b := DemandBucket(0); b < NumDemandBuckets; b++ {
		weights := make([]float64, len(p.reasons))
		var transientWeights []float64
		for i := range p.reasons {
			r := &p.reasons[i]
			total := r.DemandWeights[0] + r.DemandWeights[1] + r.DemandWeights[2]
			share := 0.0
			if total > 0 {
				share = r.DemandWeights[b] / total
			}
			weights[i] = r.TrialWeight * share
			if !r.Deterministic {
				transientWeights = append(transientWeights, weights[i])
				if b == 0 {
					p.transientIdx = append(p.transientIdx, i)
				}
			}
		}
		cat, err := stats.NewCategorical(weights)
		if err != nil {
			return nil, fmt.Errorf("failures: demand bucket %v: %w", b, err)
		}
		p.byBucket[b] = cat
		tcat, err := stats.NewCategorical(transientWeights)
		if err != nil {
			return nil, fmt.Errorf("failures: transient bucket %v: %w", b, err)
		}
		p.transientByBucket[b] = tcat
	}
	return p, nil
}

// Reasons returns the planner's reason set (taxonomy plus the no-signature
// pseudo-reason).
func (p *Planner) Reasons() []Reason { return p.reasons }

// ReasonByCode resolves a reason code against the planner's reason set
// (taxonomy plus the configured no-signature pseudo-reason). It returns nil
// for unknown codes. Trace replay (internal/trace) uses it to rebuild
// failure plans from serialized reason codes with pointee values identical
// to freshly planned ones, which is what lets a replayed export reproduce
// the original study's job population exactly.
func (p *Planner) ReasonByCode(code string) *Reason {
	for i := range p.reasons {
		if p.reasons[i].Code == code {
			return &p.reasons[i]
		}
	}
	return nil
}

// SampleReason draws a failure reason conditioned on GPU demand.
func (p *Planner) SampleReason(gpus int, g *stats.RNG) *Reason {
	b := BucketFor(gpus)
	idx := p.byBucket[b].Sample(g)
	return &p.reasons[idx]
}

// SampleTransientReason draws a non-deterministic reason conditioned on
// demand — used for failures that a retry can overcome.
func (p *Planner) SampleTransientReason(gpus int, g *stats.RNG) *Reason {
	b := BucketFor(gpus)
	idx := p.transientByBucket[b].Sample(g)
	return &p.reasons[p.transientIdx[idx]]
}

// SampleUserProfile draws the characteristic failure reason for a new user.
// A minority of users are "error-prone": their doomed jobs mostly hit the
// same reason, which concentrates trials per user as in Table 7.
func (p *Planner) SampleUserProfile(g *stats.RNG) *Reason {
	// Weight by trial counts so the heaviest reasons (CPU OOM, incorrect
	// inputs) dominate user profiles, as in the paper's per-user analysis.
	idx := p.byBucket[Demand1].Sample(g)
	return &p.reasons[idx]
}

// SampleRTFMinutes draws a runtime-to-failure for the reason, applying the
// demand tilt for reasons whose RTF grows with GPU count (Figure 10).
//
// Draws are truncated at 1.5x the reason's reported 95th percentile: the
// unbounded log-normal tail (fit from p50/p90) would otherwise put most of
// the distribution's *mean* beyond anything the paper observed, and the
// trace's per-trial GPU-time budget (Table 7's RTFxDemand column sums to
// ~47M GPU-minutes over ~38k trials) rules that out. Truncating at >= p95
// leaves the reported p50/p90 reproduction unaffected.
func (p *Planner) SampleRTFMinutes(r *Reason, gpus int, g *stats.RNG) float64 {
	spec := r.rtf
	if r.DemandRTFSlope != 0 && gpus > 0 {
		// Shift log-median by slope*(ln g - ln meanGPUs) so the marginal
		// median stays approximately calibrated while high-demand jobs
		// fail later.
		spec.Mu += r.DemandRTFSlope * (math.Log(float64(gpus)) - math.Log(p.meanGPUs))
	}
	v := spec.Sample(g)
	if v < 0.02 {
		v = 0.02 // failures are detected no faster than ~1 second
	}
	if cap := 1.5 * r.RTFP95Min; v > cap {
		v = cap
	}
	return v
}

// PlanJob decides a job's fate. gpus is the job's GPU demand; userFavorite
// is the submitting user's characteristic reason (may be nil for
// non-error-prone users).
func (p *Planner) PlanJob(gpus int, userFavorite *Reason, g *stats.RNG) JobPlan {
	b := SizeBucketFor(gpus)
	u := g.Float64()
	switch {
	case u < p.cfg.UnsuccessfulProb[b]:
		return p.planUnsuccessful(gpus, userFavorite, g)
	case u < p.cfg.UnsuccessfulProb[b]+p.cfg.KilledProb[b]:
		plan := JobPlan{Outcome: Killed, KillFraction: g.Uniform(0.3, 1.0)}
		p.maybeAddTransient(&plan, gpus, b, g)
		return plan
	default:
		plan := JobPlan{Outcome: Passed}
		p.maybeAddTransient(&plan, gpus, b, g)
		return plan
	}
}

func (p *Planner) planUnsuccessful(gpus int, userFavorite *Reason, g *stats.RNG) JobPlan {
	reason := p.SampleReason(gpus, g)
	if userFavorite != nil && g.Bool(p.cfg.UserFavoriteBias) {
		reason = userFavorite
	}
	attempts := p.cfg.MaxRetries + 1
	plan := JobPlan{Outcome: Unsuccessful}
	first := p.SampleRTFMinutes(reason, gpus, g)
	for i := 0; i < attempts; i++ {
		rtf := first
		if i > 0 {
			if reason.Deterministic {
				// Deterministic errors reproduce at nearly the same point;
				// jitter reflects environment noise.
				rtf = first * g.Uniform(0.85, 1.15)
			} else {
				rtf = p.SampleRTFMinutes(reason, gpus, g)
			}
		}
		plan.FailedAttempts = append(plan.FailedAttempts, AttemptPlan{Reason: reason, RTFMinutes: rtf})
	}
	return plan
}

// maybeAddTransient prepends retryable transient failures to a job that
// ultimately passes or is killed.
func (p *Planner) maybeAddTransient(plan *JobPlan, gpus int, b SizeBucket, g *stats.RNG) {
	if !g.Bool(p.cfg.TransientFailureProb[b]) {
		return
	}
	n := 1
	// Occasionally more than one transient failure.
	if g.Bool(0.25) {
		n = 2
	}
	for i := 0; i < n && i <= p.cfg.MaxRetries; i++ {
		r := p.SampleTransientReason(gpus, g)
		plan.FailedAttempts = append(plan.FailedAttempts, AttemptPlan{
			Reason:     r,
			RTFMinutes: p.SampleRTFMinutes(r, gpus, g),
		})
	}
}
