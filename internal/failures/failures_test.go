package failures

import (
	"math"
	"testing"
	"testing/quick"

	"philly/internal/stats"
)

func TestTaxonomyIntegrity(t *testing.T) {
	tax := Taxonomy()
	if len(tax) != 21 {
		t.Fatalf("taxonomy has %d reasons, want 21 (Table 7 rows minus no-signature)", len(tax))
	}
	codes := map[string]bool{}
	for _, r := range tax {
		if r.Code == "" || r.Name == "" {
			t.Errorf("reason with empty code/name: %+v", r)
		}
		if codes[r.Code] {
			t.Errorf("duplicate code %q", r.Code)
		}
		codes[r.Code] = true
		if r.Categories == 0 {
			t.Errorf("%s has no category", r.Code)
		}
		if r.TrialWeight <= 0 {
			t.Errorf("%s has non-positive trial weight", r.Code)
		}
		if r.RTFMedianMin <= 0 || r.RTFP90Min < r.RTFMedianMin || r.RTFP95Min < r.RTFP90Min {
			t.Errorf("%s has inconsistent RTF percentiles: %v/%v/%v", r.Code, r.RTFMedianMin, r.RTFP90Min, r.RTFP95Min)
		}
		sum := r.DemandWeights[0] + r.DemandWeights[1] + r.DemandWeights[2]
		if sum <= 0 {
			t.Errorf("%s has no demand weight", r.Code)
		}
	}
	// Spot-check the dominant rows against Table 7.
	m := ByCode()
	if m[CodeCPUOOM].TrialWeight != 12076 {
		t.Errorf("CPU OOM trial weight = %v, want 12076", m[CodeCPUOOM].TrialWeight)
	}
	if m[CodeIncorrectInputs].PaperUsers != 208 {
		t.Errorf("incorrect inputs users = %v, want 208", m[CodeIncorrectInputs].PaperUsers)
	}
	if !m[CodeModelCkptError].Categories.Has(Infrastructure) {
		t.Error("model ckpt error should be an infrastructure failure")
	}
	if m[CodeModelCkptError].Deterministic {
		t.Error("model ckpt error should be transient (HDFS)")
	}
	if !m[CodeSyntaxError].Deterministic {
		t.Error("syntax error must be deterministic")
	}
}

func TestCategoryString(t *testing.T) {
	if got := (Infrastructure | AIEngine | User).String(); got != "IF|AE|U" {
		t.Errorf("category string = %q", got)
	}
	if got := Category(0).String(); got != "-" {
		t.Errorf("empty category string = %q", got)
	}
	if !User.Has(User) || User.Has(AIEngine) {
		t.Error("Has() misbehaves")
	}
}

func TestBuckets(t *testing.T) {
	cases := []struct {
		gpus   int
		demand DemandBucket
		size   SizeBucket
	}{
		{1, Demand1, Size1},
		{2, Demand2to4, Size2to4},
		{4, Demand2to4, Size2to4},
		{5, DemandOver4, Size5to8},
		{8, DemandOver4, Size5to8},
		{16, DemandOver4, SizeOver8},
	}
	for _, c := range cases {
		if got := BucketFor(c.gpus); got != c.demand {
			t.Errorf("BucketFor(%d) = %v, want %v", c.gpus, got, c.demand)
		}
		if got := SizeBucketFor(c.gpus); got != c.size {
			t.Errorf("SizeBucketFor(%d) = %v, want %v", c.gpus, got, c.size)
		}
	}
	if Size2to4.String() != "2-4 GPU" || DemandOver4.String() != ">4" {
		t.Error("bucket names wrong")
	}
}

func TestOutcomeString(t *testing.T) {
	if Passed.String() != "Passed" || Killed.String() != "Killed" || Unsuccessful.String() != "Unsuccessful" {
		t.Error("outcome names wrong")
	}
}

func TestPlannerConfigValidation(t *testing.T) {
	if err := DefaultPlannerConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultPlannerConfig()
	bad.UnsuccessfulProb[0] = 0.9
	bad.KilledProb[0] = 0.3
	if err := bad.Validate(); err == nil {
		t.Error("want error when probs sum > 1")
	}
	bad2 := DefaultPlannerConfig()
	bad2.MaxRetries = -1
	if err := bad2.Validate(); err == nil {
		t.Error("want error for negative retries")
	}
	bad3 := DefaultPlannerConfig()
	bad3.UserFavoriteBias = 1.5
	if err := bad3.Validate(); err == nil {
		t.Error("want error for bias > 1")
	}
}

func TestStatusMixCalibration(t *testing.T) {
	p, err := NewPlanner(DefaultPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(42)
	// Size mix close to the workload generator's default.
	sizes := []int{1, 1, 1, 1, 1, 1, 2, 4, 4, 8, 8, 16}
	counts := map[Outcome]int{}
	n := 60000
	for i := 0; i < n; i++ {
		plan := p.PlanJob(sizes[i%len(sizes)], nil, g)
		counts[plan.Outcome]++
	}
	passed := float64(counts[Passed]) / float64(n)
	killed := float64(counts[Killed]) / float64(n)
	unsucc := float64(counts[Unsuccessful]) / float64(n)
	// Table 6: 69.3% / 13.5% / 17.2%. Allow a few points of tolerance: the
	// exact mix also depends on the workload size distribution.
	if math.Abs(passed-0.693) > 0.06 {
		t.Errorf("passed fraction = %.3f, want ~0.693", passed)
	}
	if math.Abs(killed-0.135) > 0.05 {
		t.Errorf("killed fraction = %.3f, want ~0.135", killed)
	}
	if math.Abs(unsucc-0.172) > 0.06 {
		t.Errorf("unsuccessful fraction = %.3f, want ~0.172", unsucc)
	}
}

func TestLargerJobsFailMore(t *testing.T) {
	p, err := NewPlanner(DefaultPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(3)
	rate := func(gpus int) float64 {
		bad := 0
		n := 20000
		for i := 0; i < n; i++ {
			if p.PlanJob(gpus, nil, g).Outcome == Unsuccessful {
				bad++
			}
		}
		return float64(bad) / float64(n)
	}
	r1, r16 := rate(1), rate(16)
	if r16 <= r1 {
		t.Errorf("unsuccessful rate should grow with size: 1 GPU %.3f vs 16 GPU %.3f", r1, r16)
	}
	if r16 < 2*r1 {
		t.Errorf("Figure 9b wants a strong effect; got 1 GPU %.3f vs 16 GPU %.3f", r1, r16)
	}
}

func TestUnsuccessfulPlanStructure(t *testing.T) {
	cfg := DefaultPlannerConfig()
	cfg.UnsuccessfulProb = [NumSizeBuckets]float64{1, 1, 1, 1} // force unsuccessful
	cfg.KilledProb = [NumSizeBuckets]float64{0, 0, 0, 0}
	p, err := NewPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(4)
	for i := 0; i < 200; i++ {
		plan := p.PlanJob(4, nil, g)
		if plan.Outcome != Unsuccessful {
			t.Fatal("forced unsuccessful outcome not honored")
		}
		if got := len(plan.FailedAttempts); got != cfg.MaxRetries+1 {
			t.Fatalf("attempts = %d, want %d", got, cfg.MaxRetries+1)
		}
		if plan.Retries() != cfg.MaxRetries {
			t.Fatalf("Retries = %d, want %d", plan.Retries(), cfg.MaxRetries)
		}
		if plan.TotalAttempts() != cfg.MaxRetries+1 {
			t.Fatalf("TotalAttempts = %d", plan.TotalAttempts())
		}
		reason := plan.FailedAttempts[0].Reason
		for _, a := range plan.FailedAttempts {
			if a.Reason != reason {
				t.Fatal("unsuccessful attempts should share one reason")
			}
			if a.RTFMinutes <= 0 {
				t.Fatalf("non-positive RTF %v", a.RTFMinutes)
			}
		}
		// Deterministic reasons reproduce at nearly the same RTF.
		if reason.Deterministic && len(plan.FailedAttempts) >= 2 {
			r0, r1 := plan.FailedAttempts[0].RTFMinutes, plan.FailedAttempts[1].RTFMinutes
			if r1 < r0*0.8 || r1 > r0*1.2 {
				t.Fatalf("deterministic retry RTF drifted: %v -> %v", r0, r1)
			}
		}
	}
}

func TestKilledPlanStructure(t *testing.T) {
	cfg := DefaultPlannerConfig()
	cfg.UnsuccessfulProb = [NumSizeBuckets]float64{0, 0, 0, 0}
	cfg.KilledProb = [NumSizeBuckets]float64{1, 1, 1, 1}
	cfg.TransientFailureProb = [NumSizeBuckets]float64{0, 0, 0, 0}
	p, err := NewPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(5)
	for i := 0; i < 100; i++ {
		plan := p.PlanJob(1, nil, g)
		if plan.Outcome != Killed {
			t.Fatal("forced killed outcome not honored")
		}
		if plan.KillFraction < 0.3 || plan.KillFraction > 1 {
			t.Fatalf("KillFraction = %v out of [0.3, 1]", plan.KillFraction)
		}
		if len(plan.FailedAttempts) != 0 {
			t.Fatal("transient failures disabled but plan has failed attempts")
		}
		if plan.Retries() != 0 || plan.TotalAttempts() != 1 {
			t.Fatal("killed job without transients should have exactly 1 attempt")
		}
	}
}

func TestTransientFailuresAreRetryable(t *testing.T) {
	cfg := DefaultPlannerConfig()
	cfg.UnsuccessfulProb = [NumSizeBuckets]float64{0, 0, 0, 0}
	cfg.KilledProb = [NumSizeBuckets]float64{0, 0, 0, 0}
	cfg.TransientFailureProb = [NumSizeBuckets]float64{1, 1, 1, 1}
	p, err := NewPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(6)
	for i := 0; i < 200; i++ {
		plan := p.PlanJob(8, nil, g)
		if plan.Outcome != Passed {
			t.Fatal("want passed outcome")
		}
		if len(plan.FailedAttempts) == 0 {
			t.Fatal("forced transient failure missing")
		}
		for _, a := range plan.FailedAttempts {
			if a.Reason.Deterministic {
				t.Fatalf("transient attempt used deterministic reason %s", a.Reason.Code)
			}
		}
		if plan.Retries() != len(plan.FailedAttempts) {
			t.Fatal("retries for passed job should equal failed attempts")
		}
	}
}

func TestDemandConditioning(t *testing.T) {
	p, err := NewPlanner(DefaultPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(7)
	count := func(gpus int, code string, n int) float64 {
		hits := 0
		for i := 0; i < n; i++ {
			if p.SampleReason(gpus, g).Code == code {
				hits++
			}
		}
		return float64(hits) / float64(n)
	}
	// CPU OOM is overwhelmingly a 1-GPU phenomenon in Table 7
	// (11465 / 235 / 376).
	oom1 := count(1, CodeCPUOOM, 20000)
	oom16 := count(16, CodeCPUOOM, 20000)
	if oom1 <= oom16 {
		t.Errorf("CPU OOM should concentrate on 1-GPU jobs: %v vs %v", oom1, oom16)
	}
	// CUDA ver. mismatch is a >4 GPU phenomenon (1 / 1 / 47).
	ver16 := count(16, CodeCUDAVerMismatch, 20000)
	ver1 := count(1, CodeCUDAVerMismatch, 20000)
	if ver16 <= ver1 {
		t.Errorf("CUDA ver mismatch should concentrate on >4 GPU: %v vs %v", ver1, ver16)
	}
}

func TestRTFCalibration(t *testing.T) {
	p, err := NewPlanner(DefaultPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(8)
	m := ByCode()
	// Reasons without a demand-RTF tilt reproduce their marginals at any
	// demand; sloped reasons (ckpt, incorrect inputs, ...) are recentred at
	// the mean demand and are checked by the demand-trend tests instead.
	for _, code := range []string{CodeCPUOOM, CodeGPUOOM, CodeSyntaxError} {
		r := m[code]
		if r.DemandRTFSlope != 0 {
			t.Fatalf("%s unexpectedly has a demand tilt; pick another test reason", code)
		}
		var vals []float64
		for i := 0; i < 20000; i++ {
			vals = append(vals, p.SampleRTFMinutes(r, 1, g))
		}
		med := stats.Percentile(vals, 50)
		if med < r.RTFMedianMin*0.8 || med > r.RTFMedianMin*1.25 {
			t.Errorf("%s sampled median %v, want ~%v", code, med, r.RTFMedianMin)
		}
		p90 := stats.Percentile(vals, 90)
		if p90 < r.RTFP90Min*0.7 || p90 > r.RTFP90Min*1.4 {
			t.Errorf("%s sampled p90 %v, want ~%v", code, p90, r.RTFP90Min)
		}
	}
}

func TestRTFCapAtP95(t *testing.T) {
	p, err := NewPlanner(DefaultPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(21)
	r := ByCode()[CodeIncorrectInputs]
	for i := 0; i < 50000; i++ {
		if v := p.SampleRTFMinutes(r, 2, g); v > 1.5*r.RTFP95Min {
			t.Fatalf("RTF draw %v exceeds 1.5x p95 cap %v", v, 1.5*r.RTFP95Min)
		}
	}
}

func TestHeavyTransientsFailFasterAtScale(t *testing.T) {
	// Figure 10 (a, c, d): for incorrect inputs / ckpt error / MPI runtime,
	// large-demand trials fail sooner than small-demand ones.
	p, err := NewPlanner(DefaultPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(22)
	for _, code := range []string{CodeIncorrectInputs, CodeModelCkptError, CodeMPIRuntime} {
		r := ByCode()[code]
		med := func(gpus int) float64 {
			var vals []float64
			for i := 0; i < 10000; i++ {
				vals = append(vals, p.SampleRTFMinutes(r, gpus, g))
			}
			return stats.Percentile(vals, 50)
		}
		if m1, m16 := med(1), med(16); m16 >= m1 {
			t.Errorf("%s: 16-GPU median RTF %v should be below 1-GPU %v", code, m16, m1)
		}
	}
}

func TestSemanticErrorRTFGrowsWithDemand(t *testing.T) {
	p, err := NewPlanner(DefaultPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(9)
	r := ByCode()[CodeSemanticError]
	median := func(gpus int) float64 {
		var vals []float64
		for i := 0; i < 10000; i++ {
			vals = append(vals, p.SampleRTFMinutes(r, gpus, g))
		}
		return stats.Percentile(vals, 50)
	}
	m1, m16 := median(1), median(16)
	if m16 <= 2*m1 {
		t.Errorf("Figure 10: semantic-error RTF should grow strongly with demand; 1 GPU %v vs 16 GPU %v", m1, m16)
	}
}

func TestUserFavoriteBias(t *testing.T) {
	cfg := DefaultPlannerConfig()
	cfg.UnsuccessfulProb = [NumSizeBuckets]float64{1, 1, 1, 1}
	cfg.KilledProb = [NumSizeBuckets]float64{0, 0, 0, 0}
	cfg.UserFavoriteBias = 1.0
	p, err := NewPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := stats.NewRNG(10)
	fav := ByCode()[CodeGPUOOM]
	for i := 0; i < 50; i++ {
		plan := p.PlanJob(1, fav, g)
		if plan.FailedAttempts[0].Reason.Code != CodeGPUOOM {
			t.Fatal("full favorite bias should pin the reason")
		}
	}
}

func TestPlannerReasonsIncludeNoSignature(t *testing.T) {
	p, err := NewPlanner(DefaultPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range p.Reasons() {
		if r.Code == CodeNoSignature {
			found = true
		}
	}
	if !found {
		t.Error("planner reason set must include the no-signature pseudo-reason")
	}
}

// Property: every plan is internally consistent.
func TestPlanConsistencyProperty(t *testing.T) {
	p, err := NewPlanner(DefaultPlannerConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, gpusRaw uint8) bool {
		g := stats.NewRNG(seed)
		gpus := 1 + int(gpusRaw)%32
		plan := p.PlanJob(gpus, nil, g)
		switch plan.Outcome {
		case Unsuccessful:
			if len(plan.FailedAttempts) == 0 {
				return false
			}
		case Killed:
			if plan.KillFraction <= 0 || plan.KillFraction > 1 {
				return false
			}
		}
		for _, a := range plan.FailedAttempts {
			if a.Reason == nil || a.RTFMinutes <= 0 {
				return false
			}
		}
		return plan.TotalAttempts() >= 1 && plan.Retries() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
