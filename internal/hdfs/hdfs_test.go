package hdfs

import (
	"strings"
	"testing"

	"philly/internal/simulation"
	"philly/internal/stats"
)

func TestNewValidation(t *testing.T) {
	g := stats.NewRNG(1)
	if _, err := New(Config{TransientWriteFailureProb: 1.5}, g); err == nil {
		t.Error("want error for prob > 1")
	}
	if _, err := New(Config{Datasets: map[string]Dataset{"x": {Blocks: 0}}}, g); err == nil {
		t.Error("want error for zero blocks")
	}
	if _, err := New(Config{Datasets: map[string]Dataset{"x": {Blocks: 5, CorruptBlock: 5}}}, g); err == nil {
		t.Error("want error for corrupt block out of range")
	}
	if _, err := New(Config{RecoveryWindows: []Window{{Start: 10, End: 10}}}, g); err == nil {
		t.Error("want error for empty window")
	}
}

func TestReadBlock(t *testing.T) {
	g := stats.NewRNG(2)
	s, err := New(Config{Datasets: map[string]Dataset{
		"/data/imagenet": {Blocks: 100, CorruptBlock: 42},
		"/data/speech":   {Blocks: 10, CorruptBlock: -1},
	}}, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReadBlock("/data/speech", 5); err != nil {
		t.Errorf("healthy read failed: %v", err)
	}
	err = s.ReadBlock("/data/imagenet", 42)
	if err == nil {
		t.Fatal("corrupt block read succeeded")
	}
	re, ok := err.(*ReadError)
	if !ok || re.Kind != "corrupt" {
		t.Errorf("error = %v", err)
	}
	if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("error text: %v", err)
	}
	if err := s.ReadBlock("/data/missing", 0); err == nil {
		t.Error("missing dataset read succeeded")
	}
	if err := s.ReadBlock("/data/speech", 99); err == nil {
		t.Error("out-of-range block read succeeded")
	}
}

func TestEpochOfFirstReadFailure(t *testing.T) {
	g := stats.NewRNG(3)
	s, err := New(Config{Datasets: map[string]Dataset{
		"/d": {Blocks: 100, CorruptBlock: 55},
		"/h": {Blocks: 100, CorruptBlock: -1},
	}}, g)
	if err != nil {
		t.Fatal(err)
	}
	// 10 blocks/epoch: block 55 is read during epoch 6.
	if got := s.EpochOfFirstReadFailure("/d", 10); got != 6 {
		t.Errorf("epoch = %d, want 6", got)
	}
	if got := s.EpochOfFirstReadFailure("/h", 10); got != 0 {
		t.Errorf("healthy dataset epoch = %d, want 0", got)
	}
	if got := s.EpochOfFirstReadFailure("/missing", 10); got != 1 {
		t.Errorf("missing dataset epoch = %d, want 1", got)
	}
	if got := s.EpochOfFirstReadFailure("/d", 0); got != 0 {
		t.Errorf("zero blocks/epoch = %d, want 0", got)
	}
}

func TestCheckpointRecoveryWindows(t *testing.T) {
	g := stats.NewRNG(4)
	s, err := New(Config{
		RecoveryWindows: []Window{{Start: 100, End: 200}},
	}, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCheckpoint("/ckpt/m", 50); err != nil {
		t.Errorf("write outside window failed: %v", err)
	}
	if err := s.WriteCheckpoint("/ckpt/m", 150); err == nil {
		t.Error("write inside recovery window succeeded")
	}
	if !s.InRecovery(150) || s.InRecovery(250) {
		t.Error("InRecovery wrong")
	}
}

func TestTransientWriteFailures(t *testing.T) {
	g := stats.NewRNG(5)
	s, err := New(Config{TransientWriteFailureProb: 0.5}, g)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < 1000; i++ {
		if err := s.WriteCheckpoint("/c", simulation.Time(i)); err != nil {
			failures++
		}
	}
	if failures < 400 || failures > 600 {
		t.Errorf("transient failures = %d/1000, want ~500", failures)
	}
}

func TestAddDataset(t *testing.T) {
	g := stats.NewRNG(6)
	s, err := New(DefaultConfig(), g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddDataset("/new", Dataset{Blocks: 10, CorruptBlock: -1}); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadBlock("/new", 3); err != nil {
		t.Errorf("read after add failed: %v", err)
	}
	if err := s.AddDataset("/bad", Dataset{Blocks: 0}); err == nil {
		t.Error("want error for invalid dataset")
	}
	if err := s.AddDataset("/bad2", Dataset{Blocks: 3, CorruptBlock: 9}); err == nil {
		t.Error("want error for out-of-range corrupt block")
	}
}
