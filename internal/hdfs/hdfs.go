// Package hdfs simulates the distributed store Philly uses for training
// inputs and model checkpoints (§2.2). The simulation captures the two
// behaviours the paper's failure analysis depends on: reads of input data
// that can surface corrupt/missing blocks deep into a job's runtime
// ("incorrect inputs" failures with a heavy RTF tail), and checkpoint
// writes that fail transiently during name-node recovery windows ("model
// ckpt error", the failure class with the longest runtime-to-failure).
package hdfs

import (
	"fmt"
	"sort"

	"philly/internal/simulation"
	"philly/internal/stats"
)

// Config parameterizes the simulated store.
type Config struct {
	// Datasets maps dataset paths to their health. Reads of corrupt
	// datasets fail when the reader reaches the corrupt region.
	Datasets map[string]Dataset
	// TransientWriteFailureProb is the probability a checkpoint write
	// fails outside recovery windows (lease churn, slow datanodes).
	TransientWriteFailureProb float64
	// RecoveryWindows are [start, end) intervals of simulated time during
	// which the name node is recovering and writes fail.
	RecoveryWindows []Window
}

// Window is a half-open simulated-time interval.
type Window struct {
	Start, End simulation.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t simulation.Time) bool { return t >= w.Start && t < w.End }

// Dataset describes one stored dataset.
type Dataset struct {
	// Blocks is the number of HDFS blocks.
	Blocks int
	// CorruptBlock is the index of a corrupt block, or -1 for a healthy
	// dataset.
	CorruptBlock int
}

// DefaultConfig returns a healthy store with a low transient failure rate
// and no scheduled recovery windows.
func DefaultConfig() Config {
	return Config{
		Datasets:                  map[string]Dataset{},
		TransientWriteFailureProb: 0.002,
	}
}

// Store is the simulated file system.
type Store struct {
	cfg Config
	rng *stats.RNG
}

// New builds a store. It returns an error for invalid configurations.
func New(cfg Config, rng *stats.RNG) (*Store, error) {
	if cfg.TransientWriteFailureProb < 0 || cfg.TransientWriteFailureProb > 1 {
		return nil, fmt.Errorf("hdfs: transient failure prob %v out of [0, 1]", cfg.TransientWriteFailureProb)
	}
	for path, ds := range cfg.Datasets {
		if ds.Blocks <= 0 {
			return nil, fmt.Errorf("hdfs: dataset %q has %d blocks", path, ds.Blocks)
		}
		if ds.CorruptBlock >= ds.Blocks {
			return nil, fmt.Errorf("hdfs: dataset %q corrupt block %d out of range", path, ds.CorruptBlock)
		}
	}
	for i, w := range cfg.RecoveryWindows {
		if w.End <= w.Start {
			return nil, fmt.Errorf("hdfs: recovery window %d is empty or inverted", i)
		}
	}
	// Sort windows for deterministic reporting.
	sort.Slice(cfg.RecoveryWindows, func(i, j int) bool {
		return cfg.RecoveryWindows[i].Start < cfg.RecoveryWindows[j].Start
	})
	return &Store{cfg: cfg, rng: rng}, nil
}

// AddDataset registers a dataset.
func (s *Store) AddDataset(path string, ds Dataset) error {
	if ds.Blocks <= 0 {
		return fmt.Errorf("hdfs: dataset %q has %d blocks", path, ds.Blocks)
	}
	if ds.CorruptBlock >= ds.Blocks {
		return fmt.Errorf("hdfs: dataset %q corrupt block %d out of range", path, ds.CorruptBlock)
	}
	s.cfg.Datasets[path] = ds
	return nil
}

// ReadError describes a failed read.
type ReadError struct {
	Path  string
	Block int
	Kind  string // "missing" or "corrupt"
}

// Error implements error.
func (e *ReadError) Error() string {
	return fmt.Sprintf("hdfs: %s dataset %q at block %d", e.Kind, e.Path, e.Block)
}

// ReadBlock simulates reading one block of a dataset. It returns an error
// for unknown datasets or when the block is the corrupt one — the latter is
// how "incorrect inputs" failures surface only once the reader reaches the
// bad region, explaining the paper's heavy RTF tail for that class.
func (s *Store) ReadBlock(path string, block int) error {
	ds, ok := s.cfg.Datasets[path]
	if !ok {
		return &ReadError{Path: path, Block: block, Kind: "missing"}
	}
	if block < 0 || block >= ds.Blocks {
		return &ReadError{Path: path, Block: block, Kind: "missing"}
	}
	if block == ds.CorruptBlock {
		return &ReadError{Path: path, Block: block, Kind: "corrupt"}
	}
	return nil
}

// EpochOfFirstReadFailure returns the 1-based epoch at which a job reading
// the dataset sequentially (blocksPerEpoch blocks per epoch, restarting each
// epoch) first hits a read failure, or 0 if it never fails.
func (s *Store) EpochOfFirstReadFailure(path string, blocksPerEpoch int) int {
	ds, ok := s.cfg.Datasets[path]
	if !ok {
		return 1 // missing dataset fails on the first read
	}
	if ds.CorruptBlock < 0 {
		return 0
	}
	if blocksPerEpoch <= 0 {
		return 0
	}
	// Sequential epoch reads cover the dataset start-to-end each epoch, so
	// a corrupt block within the per-epoch window fails in epoch 1; blocks
	// beyond it fail in the epoch that reaches them.
	return ds.CorruptBlock/blocksPerEpoch + 1
}

// WriteCheckpoint simulates writing a model checkpoint at time now. It
// fails during name-node recovery windows and, with the configured small
// probability, transiently at any time.
func (s *Store) WriteCheckpoint(path string, now simulation.Time) error {
	for _, w := range s.cfg.RecoveryWindows {
		if w.Contains(now) {
			return fmt.Errorf("hdfs: namenode is in safe mode (recovery window), cannot write %q", path)
		}
	}
	if s.rng != nil && s.rng.Bool(s.cfg.TransientWriteFailureProb) {
		return fmt.Errorf("hdfs: transient failure writing checkpoint %q: lease expired", path)
	}
	return nil
}

// InRecovery reports whether the name node is recovering at time t.
func (s *Store) InRecovery(t simulation.Time) bool {
	for _, w := range s.cfg.RecoveryWindows {
		if w.Contains(t) {
			return true
		}
	}
	return false
}
