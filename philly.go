// Package philly is a discrete-event reproduction of "Analysis of
// Large-Scale Multi-Tenant GPU Clusters for DNN Training Workloads"
// (Jeon et al., USENIX ATC 2019) — the Philly trace study.
//
// The package simulates the production system the paper measures: a
// multi-tenant GPU cluster (racks as RDMA domains, 2- and 8-GPU server
// SKUs), a YARN-like fair-share scheduler with gang scheduling and
// locality-aware placement, per-minute hardware telemetry, a 22-reason
// failure model with log generation and signature classification, and a
// workload generator calibrated to every aggregate the paper publishes.
// Running a Study and feeding the result through Analyze regenerates the
// paper's tables and figures.
//
// Quick start:
//
//	cfg := philly.SmallConfig()
//	cfg.Seed = 42
//	res, err := philly.Run(cfg)
//	if err != nil { ... }
//	report := philly.Analyze(res)
//	fmt.Println(report.RenderAll())
//
// The heavy lifting lives in internal packages (internal/core,
// internal/scheduler, internal/analysis, ...); this package is the stable
// surface. The exported names below are type aliases onto the internal
// implementations so that the full configuration surface remains available
// without duplicating it.
package philly

import (
	"fmt"
	"io"
	"strings"

	"philly/internal/analysis"
	"philly/internal/core"
	"philly/internal/failures"
	"philly/internal/faults"
	"philly/internal/federation"
	"philly/internal/joblog"
	"philly/internal/par"
	"philly/internal/perfmodel"
	"philly/internal/scheduler"
	"philly/internal/trace"
	"philly/internal/workload"
)

// Config is the full study configuration: cluster topology, workload,
// scheduler policy, performance-model calibration, telemetry cadence.
type Config = core.Config

// StudyResult is everything a simulation produces: per-job results,
// telemetry aggregates, scheduler counters.
type StudyResult = core.StudyResult

// JobResult is one job's outcome.
type JobResult = core.JobResult

// Trace is the Philly-traces-style export of a study.
type Trace = trace.Trace

// Policy names a scheduling discipline for Config.Scheduler.Policy.
type Policy = scheduler.Policy

// Scheduling policies (Table 1): Philly's locality-based scheduler and the
// comparison baselines.
const (
	PolicyPhilly   = scheduler.PolicyPhilly
	PolicyFIFO     = scheduler.PolicyFIFO
	PolicySRTF     = scheduler.PolicySRTF
	PolicyTiresias = scheduler.PolicyTiresias
	PolicyGandiva  = scheduler.PolicyGandiva
)

// DefaultConfig returns the paper-scale configuration: ~2300 GPUs, 96,260
// jobs over 75 days, 14 virtual clusters. A full run takes minutes and is
// what EXPERIMENTS.md records.
func DefaultConfig() Config { return core.DefaultConfig() }

// MediumConfig returns a quarter-scale paper configuration (~2300 GPUs,
// ~24k jobs) — tens of seconds per run, paper-like contention.
func MediumConfig() Config { return core.MediumConfig() }

// SmallConfig returns a laptop-scale configuration (~230 GPUs, 3,300 jobs
// over 8 days) that exhibits the same qualitative behaviour; the test
// suite's calibration assertions run against it.
func SmallConfig() Config { return core.SmallConfig() }

// Run executes a study to completion on the calling goroutine alone, on
// the sequential event engine.
func Run(cfg Config) (*StudyResult, error) { return RunWith(cfg, RunOptions{Workers: 1}) }

// RunParallel executes a study with intra-study parallelism: the event
// loop shards per virtual cluster, and the per-tick telemetry walk,
// multi-rack placement scoring, and large log scans fan out across a
// worker pool of the given size (<= 0 means GOMAXPROCS). The result is
// bit-identical to Run for every worker count — parallelism changes
// wall-clock only (see PERFORMANCE.md for the determinism argument).
func RunParallel(cfg Config, workers int) (*StudyResult, error) {
	return RunWith(cfg, RunOptions{Workers: workers, ShardEvents: workers != 1})
}

// RunOptions selects how a study spends hardware.
type RunOptions struct {
	// Workers is the fork-join worker budget: 1 runs everything inline on
	// the calling goroutine, <= 0 means GOMAXPROCS.
	Workers int
	// ShardEvents routes the study onto the per-VC sharded event engine
	// (internal/simulation.Sharded): shard-local work — failure-log
	// classification, convergence analysis — runs concurrently across VCs
	// inside virtual-time windows, while shared-state events execute at
	// window barriers in the sequential engine's exact order. Results are
	// bit-identical with it on or off, at any shard count.
	ShardEvents bool
	// Shards is the event-shard count when ShardEvents is set; <= 0 means
	// one shard per virtual cluster.
	Shards int
}

// RunWith executes a study with explicit parallelism options.
func RunWith(cfg Config, opts RunOptions) (*StudyResult, error) {
	st, err := core.NewStudy(cfg)
	if err != nil {
		return nil, fmt.Errorf("philly: %w", err)
	}
	if opts.ShardEvents {
		st.ShardEvents(opts.Shards)
	}
	if opts.Workers != 1 {
		pool := par.NewPool(opts.Workers)
		defer pool.Close()
		st.SetPool(pool)
	}
	return st.Run()
}

// NewTrace exports a study result in the Philly-traces-like format.
func NewTrace(res *StudyResult) *Trace { return trace.FromStudy(res) }

// JobSpec is one planned job: submission instant, shape, training plan and
// failure plan. Replay studies run streams of these verbatim.
type JobSpec = workload.JobSpec

// WorkloadPattern is a phase program — named phases with per-phase arrival
// rate, size mix, VC weights and failure scaling — that replaces the
// generator's stationary arrival process. Set Config.Workload.Pattern to
// use one; nil keeps the legacy diurnal cosine modulation.
type WorkloadPattern = workload.Pattern

// WorkloadPatternNames lists the built-in pattern presets ("stationary",
// "diurnal", "weekly", "burst", "night-batch").
func WorkloadPatternNames() []string { return workload.PatternNames() }

// PresetWorkloadPattern returns a built-in pattern preset by name.
func PresetWorkloadPattern(name string) (*WorkloadPattern, error) {
	return workload.PresetPattern(name)
}

// ReplayOptions parameterize trace-to-spec reconstruction (see
// internal/trace: the per-job streams are keyed by Seed, so a loaded trace
// is a pure function of the file bytes and these options).
type ReplayOptions = trace.ReplayOptions

// DefaultReplayOptions returns replay options matching the default
// workload configuration.
func DefaultReplayOptions() ReplayOptions { return trace.DefaultReplayOptions() }

// LoadTrace reads a trace file (.csv or .json — the spec schema
// philly-trace writes, this package's observed-trace exports, or the
// msr-fiddle philly-traces JSON) into a replayable job stream.
func LoadTrace(path string, opts ReplayOptions) ([]JobSpec, error) {
	return trace.LoadTraceFile(path, opts)
}

// TraceTransform is a deterministic what-if rewrite of a loaded trace:
// rate-scale, time-compress, mix-shift.
type TraceTransform = trace.Transform

// ApplyReplay installs a loaded job stream into a study configuration,
// deriving TotalJobs/Duration and appending any VCs the trace references
// that the configuration lacks.
func ApplyReplay(cfg *Config, specs []JobSpec) error { return trace.ApplyReplay(cfg, specs) }

// FaultsConfig configures the correlated-outage engine: per-domain
// (server / rack / cluster) MTBF and MTTR plus planned maintenance
// windows. Set Config.Faults to enable it; outages draw from a dedicated
// RNG stream, so a disabled config is byte-identical to a build without
// the engine.
type FaultsConfig = faults.Config

// DefaultFaultsConfig returns the calibrated but disabled outage model.
func DefaultFaultsConfig() FaultsConfig { return faults.DefaultConfig() }

// ParseFaultsSpec parses a CLI faults spec — "none", "all", or a
// "+"-joined subset of server, rack, cluster, with an optional ":SCALE"
// frequency multiplier (e.g. "server+rack:2").
func ParseFaultsSpec(spec string) (FaultsConfig, error) { return faults.ParseSpec(spec) }

// CheckpointConfig is the periodic checkpoint/restore cost model applied
// to outage kills: an outage-killed attempt loses only the work since its
// last checkpoint, paying write overhead while running and a restore cost
// on resume.
type CheckpointConfig = core.CheckpointConfig

// DefaultCheckpointConfig returns the calibrated but disabled cost model
// (30-minute interval, 30s writes, 120s restores).
func DefaultCheckpointConfig() CheckpointConfig { return core.DefaultCheckpointConfig() }

// ParseCheckpointSpec parses a CLI checkpoint spec — "off" or
// "MIN[:WRITE_S[:RESTORE_S]]" (interval in minutes, costs in seconds).
func ParseCheckpointSpec(spec string) (CheckpointConfig, error) {
	return core.ParseCheckpointSpec(spec)
}

// OutageStats summarizes the outage engine's activity over a run:
// event counts, killed attempts, down/lost/overhead GPU-hours, and the
// realized ETTF/ETTR.
type OutageStats = core.OutageStats

// FederationConfig specifies a multi-cluster (federated) study: member
// clusters, the spillover policy, and the fleet-wide quota rebalancing
// tick. See internal/federation for the barrier contract.
type FederationConfig = federation.Config

// FederationMember is one cluster of a federation.
type FederationMember = federation.Member

// FederatedResult is a completed federated study: per-member StudyResults
// plus fleet-level interaction statistics.
type FederatedResult = federation.Result

// FederationPresets lists the known member preset names ("philly-small",
// "philly-full", "helios-like", ...).
func FederationPresets() []string { return federation.Presets() }

// ParseFederationSpec parses a "+"-separated member preset list (e.g.
// "philly-small+helios-like") into a federation configuration with
// per-member seeds derived from seed and default cross-cluster
// interactions enabled.
func ParseFederationSpec(seed uint64, spec string) (FederationConfig, error) {
	return federation.ParseSpec(seed, spec)
}

// RunFederated executes a federated study. Workers follows RunOptions
// semantics: the shared pool runs member clusters concurrently inside
// fleet windows and each member's internal parallel layers. ShardEvents is
// ignored — each member is already one event lane of the fleet
// coordinator. The result is bit-identical for every worker count.
func RunFederated(cfg FederationConfig, opts RunOptions) (*FederatedResult, error) {
	st, err := federation.NewStudy(cfg)
	if err != nil {
		return nil, fmt.Errorf("philly: %w", err)
	}
	if opts.Workers != 1 {
		pool := par.NewPool(opts.Workers)
		defer pool.Close()
		st.SetPool(pool)
	}
	return st.Run()
}

// FleetReport is the per-member + combined fleet aggregation table.
type FleetReport = analysis.FleetReport

// AnalyzeFleet computes the fleet comparison table — per-member and
// combined queueing, utilization and failure aggregates — from a federated
// result.
func AnalyzeFleet(res *FederatedResult) FleetReport {
	members := make([]analysis.FleetMember, 0, len(res.Members))
	for _, m := range res.Members {
		members = append(members, analysis.FleetMember{Name: m.Name, Res: m.Result})
	}
	return analysis.ComputeFleet(members)
}

// Report bundles every reproduced table and figure for one study.
type Report struct {
	Figure2  analysis.Figure2
	Figure3  analysis.Figure3
	Figure4  analysis.Figure4
	Table2   analysis.Table2
	Figure5  analysis.Figure5
	Table3   analysis.Table3
	Table4   []perfmodel.ResNet50Result
	Figure6  analysis.Figure6
	Figure7  analysis.Figure7
	Table5   analysis.Table5
	Table6   analysis.Table6
	Figure8  analysis.Figure8
	Figure9  analysis.Figure9
	Table7   analysis.Table7
	Figure10 analysis.Figure10
	Sched    analysis.SchedulingStats
}

// Analyze computes every experiment from a study result. Table 4 (the
// controlled ResNet-50 experiment) comes from the analytical placement
// model and does not depend on the trace.
func Analyze(res *StudyResult) *Report {
	table4, err := perfmodel.ResNet50Table(perfmodel.DefaultResNet50Params())
	if err != nil {
		// Default parameters are statically valid; this is unreachable
		// short of a programming error.
		panic(err)
	}
	return &Report{
		Figure2:  analysis.ComputeFigure2(res),
		Figure3:  analysis.ComputeFigure3(res),
		Figure4:  analysis.ComputeFigure4(res),
		Table2:   analysis.ComputeTable2(res),
		Figure5:  analysis.ComputeFigure5(res),
		Table3:   analysis.ComputeTable3(res),
		Table4:   table4,
		Figure6:  analysis.ComputeFigure6(res),
		Figure7:  analysis.ComputeFigure7(res),
		Table5:   analysis.ComputeTable5(res),
		Table6:   analysis.ComputeTable6(res),
		Figure8:  analysis.ComputeFigure8(res),
		Figure9:  analysis.ComputeFigure9(res),
		Table7:   analysis.ComputeTable7(res),
		Figure10: analysis.ComputeFigure10(res),
		Sched:    analysis.ComputeSchedulingStats(res),
	}
}

// RenderTable4 prints the ResNet-50 placement experiment with the paper's
// measured values alongside.
func RenderTable4(rows []perfmodel.ResNet50Result) string {
	var b strings.Builder
	b.WriteString("Table 4: ResNet-50 placement experiment (2 GPUs, batch 32)\n")
	paper := perfmodel.PaperTable4()
	fmt.Fprintf(&b, "%-12s  %10s  %10s  %10s  %10s\n", "config", "util %", "paper", "images/s", "paper")
	for _, r := range rows {
		p := paper[r.Config]
		fmt.Fprintf(&b, "%-12s  %10.1f  %10.1f  %10.1f  %10.1f\n",
			r.Config, r.GPUUtil, p[0], r.ImagesPerSec, p[1])
	}
	return b.String()
}

// RenderAll prints every experiment in paper order.
func (r *Report) RenderAll() string {
	sections := []string{
		r.Figure2.Render(),
		r.Figure3.Render(),
		r.Figure4.Render(),
		r.Table2.Render(),
		r.Sched.Render(),
		r.Figure5.Render(),
		r.Table3.Render(),
		RenderTable4(r.Table4),
		r.Figure6.Render(),
		r.Figure7.Render(),
		r.Table5.Render(),
		r.Table6.Render(),
		r.Figure8.Render(),
		r.Figure9.Render(),
		r.Table7.Render(),
		r.Figure10.Render(),
	}
	return strings.Join(sections, "\n")
}

// WriteAll writes the rendered report to w.
func (r *Report) WriteAll(w io.Writer) error {
	_, err := io.WriteString(w, r.RenderAll())
	return err
}

// FailureReason is one class from the paper's Table 7 failure taxonomy.
type FailureReason = failures.Reason

// FailureTaxonomy returns the paper's 21 named failure reasons with their
// category flags, occurrence weights and runtime-to-failure distributions.
func FailureTaxonomy() []FailureReason { return failures.Taxonomy() }

// ClassifyFailureLog attributes a training job's stdout/stderr text to a
// root-cause failure reason code using the signature classifier (the
// paper's classifier has >230 rules; see internal/joblog). It returns
// "no_signature" when nothing matches.
func ClassifyFailureLog(log string) string {
	return joblog.NewClassifier().Classify(log)
}

// NumClassifierRules reports the size of the failure-signature rule set.
func NumClassifierRules() int { return joblog.NumRules() }
