// Command bench-compare diffs two benchmark baselines recorded with
// `make bench-json` (the `go test -json` event stream) and prints
// per-benchmark ns/op, B/op and allocs/op deltas, so perf PRs compare
// trajectories instead of eyeballing raw JSON.
//
// Usage:
//
//	bench-compare [-threshold PCT] BENCH_PR3_before.json BENCH_PR3_after.json
//
// Each file may contain several runs of the same benchmark (-count N);
// runs are averaged per benchmark before diffing. Benchmarks present in
// only one file are listed without a delta.
//
// -threshold makes the comparison a CI gate: when any benchmark's mean
// ns/op OR allocs/op regressed by more than PCT percent, the offenders are
// listed on stderr and the exit code is 1 (without the flag the tool
// always exits 0 and is purely informational). Allocation regressions from
// a zero-alloc baseline have no finite percentage and always trip the gate
// — that is what keeps the PR 2 zero-alloc guarantees pinned from CI.
//
// The gate also covers the memory metrics the full-scale sweep benchmark
// reports via b.ReportMetric — peak_rss_mb and allocs_total — treated as
// higher-is-worse like ns/op. Metrics missing from the BEFORE file are
// skipped, so baselines recorded before a metric existed keep comparing
// cleanly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample accumulates one benchmark's runs from one file.
type sample struct {
	n                       int
	nsOp, bytesOp, allocsOp float64
	// extra holds custom b.ReportMetric units (summed like the built-ins;
	// divided by n at the end). The memory gate reads peak_rss_mb and
	// allocs_total from here.
	extra map[string]float64
}

// gatedExtras are the custom metrics the -threshold gate treats as
// higher-is-worse, like ns/op and allocs/op. Metrics absent from the
// *before* file are skipped — a baseline recorded before the metric
// existed cannot gate it.
var gatedExtras = []string{"peak_rss_mb", "allocs_total"}

// benchLine matches a `go test -bench` result line, e.g.
// "BenchmarkFoo/workers=4-8  	 3	 123456 ns/op	 10 B/op	 2 allocs/op".
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(.*)$`)
	bytesOpRe  = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsOpRe = regexp.MustCompile(`([0-9.]+) allocs/op`)
	// extraRe matches b.ReportMetric values: "<float> <unit>" where the
	// unit is a bare word (slash-bearing units are the built-ins above).
	extraRe = regexp.MustCompile(`([0-9.eE+-]+) ([A-Za-z_][A-Za-z0-9_]*)(\s|$)`)
)

func parseFile(path string) (map[string]*sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// First pass: reassemble the plain benchmark text. go test -json splits
	// one result line across several "output" events (the name is printed
	// when the benchmark starts, the numbers when it finishes), so events
	// are concatenated before line-splitting; plain `go test -bench` output
	// passes through untouched.
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) > 0 && line[0] == '{' {
			var ev struct {
				Action, Output string
			}
			if err := json.Unmarshal(line, &ev); err == nil && ev.Action == "output" {
				text.WriteString(ev.Output)
			}
			continue
		}
		text.Write(line)
		text.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := map[string]*sample{}
	for _, raw := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(raw))
		if m == nil {
			continue
		}
		// Strip the trailing GOMAXPROCS suffix ("-8") so baselines from
		// different machines still line up.
		name := m[1]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := out[name]
		if s == nil {
			s = &sample{}
			out[name] = s
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		s.nsOp += ns
		s.n++
		rest := m[3]
		if bm := bytesOpRe.FindStringSubmatch(rest); bm != nil {
			b, _ := strconv.ParseFloat(bm[1], 64)
			s.bytesOp += b
		}
		if am := allocsOpRe.FindStringSubmatch(rest); am != nil {
			a, _ := strconv.ParseFloat(am[1], 64)
			s.allocsOp += a
		}
		for _, em := range extraRe.FindAllStringSubmatch(rest, -1) {
			v, err := strconv.ParseFloat(em[1], 64)
			if err != nil {
				continue
			}
			if s.extra == nil {
				s.extra = map[string]float64{}
			}
			s.extra[em[2]] += v
		}
	}
	for _, s := range out {
		s.nsOp /= float64(s.n)
		s.bytesOp /= float64(s.n)
		s.allocsOp /= float64(s.n)
		for u := range s.extra {
			s.extra[u] /= float64(s.n)
		}
	}
	return out, nil
}

func delta(before, after float64) string {
	if before == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(after-before)/before)
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// regression is one benchmark metric that moved past the gate threshold.
type regression struct {
	name   string
	metric string // "ns/op" or "allocs/op"
	pct    float64
	// fromZero marks an allocation regression off a zero-alloc baseline:
	// there is no finite percentage, and the gate always trips.
	fromZero bool
}

func (r regression) String() string {
	if r.fromZero {
		return fmt.Sprintf("%s: %s regressed from a zero-alloc baseline", r.name, r.metric)
	}
	return fmt.Sprintf("%s: +%.1f%% %s", r.name, r.pct, r.metric)
}

// findRegressions applies the CI gate to two parsed baselines: any
// benchmark present in both whose mean ns/op or allocs/op regressed beyond
// threshold percent is reported, with zero-alloc baselines gated on any
// increase at all. A threshold of 0 disables the gate. Results are sorted
// by benchmark name (ns/op before allocs/op within one benchmark).
func findRegressions(before, after map[string]*sample, threshold float64) []regression {
	if threshold <= 0 {
		return nil
	}
	names := make([]string, 0, len(before))
	for n := range before {
		if after[n] != nil {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []regression
	for _, n := range names {
		b, a := before[n], after[n]
		short := strings.TrimPrefix(n, "Benchmark")
		if b.nsOp > 0 {
			if pct := 100 * (a.nsOp - b.nsOp) / b.nsOp; pct > threshold {
				out = append(out, regression{name: short, metric: "ns/op", pct: pct})
			}
		}
		switch {
		case b.allocsOp == 0 && a.allocsOp > 0:
			out = append(out, regression{name: short, metric: "allocs/op", fromZero: true})
		case b.allocsOp > 0:
			if pct := 100 * (a.allocsOp - b.allocsOp) / b.allocsOp; pct > threshold {
				out = append(out, regression{name: short, metric: "allocs/op", pct: pct})
			}
		}
		for _, u := range gatedExtras {
			bv, ok := b.extra[u]
			if !ok || bv <= 0 {
				continue // no baseline for this metric: nothing to gate
			}
			if av, ok := a.extra[u]; ok {
				if pct := 100 * (av - bv) / bv; pct > threshold {
					out = append(out, regression{name: short, metric: u, pct: pct})
				}
			}
		}
	}
	return out
}

func main() {
	threshold := flag.Float64("threshold", 0,
		"exit non-zero when any benchmark's ns/op or allocs/op regresses by more than this percent (0 = report only)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: bench-compare [-threshold PCT] BEFORE.json AFTER.json")
		os.Exit(2)
	}
	if *threshold < 0 {
		fmt.Fprintln(os.Stderr, "bench-compare: -threshold must be >= 0")
		os.Exit(2)
	}
	before, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-compare:", err)
		os.Exit(1)
	}
	after, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-compare:", err)
		os.Exit(1)
	}
	names := map[string]bool{}
	for n := range before {
		names[n] = true
	}
	for n := range after {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "%-52s %12s %12s %8s %10s %10s %8s\n",
		"benchmark", "ns/op before", "ns/op after", "Δns/op", "allocs/op", "allocs'", "Δallocs")
	for _, n := range sorted {
		b, a := before[n], after[n]
		short := strings.TrimPrefix(n, "Benchmark")
		switch {
		case b == nil:
			fmt.Fprintf(w, "%-52s %12s %12s %8s\n", short, "-", fmtNs(a.nsOp), "new")
		case a == nil:
			fmt.Fprintf(w, "%-52s %12s %12s %8s\n", short, fmtNs(b.nsOp), "-", "gone")
		default:
			fmt.Fprintf(w, "%-52s %12s %12s %8s %10.0f %10.0f %8s\n",
				short, fmtNs(b.nsOp), fmtNs(a.nsOp), delta(b.nsOp, a.nsOp),
				b.allocsOp, a.allocsOp, delta(b.allocsOp, a.allocsOp))
		}
	}
	// Memory-gate metrics, for the benchmarks that report them.
	wroteHeader := false
	for _, n := range sorted {
		b, a := before[n], after[n]
		for _, u := range gatedExtras {
			var bv, av float64
			if b != nil {
				bv = b.extra[u]
			}
			if a != nil {
				av = a.extra[u]
			}
			if bv == 0 && av == 0 {
				continue
			}
			if !wroteHeader {
				fmt.Fprintf(w, "\n%-52s %12s %12s %8s\n", "memory gate", "before", "after", "Δ")
				wroteHeader = true
			}
			fmt.Fprintf(w, "%-52s %12.0f %12.0f %8s\n",
				strings.TrimPrefix(n, "Benchmark")+" "+u, bv, av, delta(bv, av))
		}
	}
	w.Flush()
	if regressions := findRegressions(before, after, *threshold); len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "bench-compare: %d benchmark metric(s) regressed beyond %.1f%%:\n",
			len(regressions), *threshold)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
}
