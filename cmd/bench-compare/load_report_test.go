package main

import (
	"os"
	"path/filepath"
	"testing"

	"philly/internal/serve"
)

// TestParseFileReadsLoadReport closes the loop on philly-load's
// saturation reports: a report written through serve.WriteBenchJSON must
// come back out of this tool's parser with the same numbers, because the
// CI gate (`bench-compare -threshold`) sees nothing else.
func TestParseFileReadsLoadReport(t *testing.T) {
	rep := &serve.LoadReport{
		Pattern: "weekly", RPS: 4, Completed: 10,
		MeanNs: 2e6, P50Ns: 1e6, P95Ns: 3e6, P99Ns: 4e6,
		CacheHitPct: 40, Rejected: 2, Errors: 0, AchievedRPS: 3.5,
	}
	path := filepath.Join(t.TempDir(), "BENCH_load.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.WriteBenchJSON(f, []string{rep.BenchLine()}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	samples, err := parseFile(path)
	if err != nil {
		t.Fatalf("parseFile: %v", err)
	}
	s := samples["BenchmarkServeLoad/pattern=weekly/rps=4"]
	if s == nil {
		keys := make([]string, 0, len(samples))
		for k := range samples {
			keys = append(keys, k)
		}
		t.Fatalf("load report benchmark missing; parsed %v", keys)
	}
	if s.n != 1 || s.nsOp != rep.MeanNs {
		t.Errorf("parsed n=%d ns/op=%.0f, want 1 run at the mean latency %.0f", s.n, s.nsOp, rep.MeanNs)
	}
	for unit, want := range map[string]float64{
		"p50_ns": 1e6, "p95_ns": 3e6, "p99_ns": 4e6,
		"cache_hit_pct": 40, "rejected_reqs": 2, "err_reqs": 0,
		"achieved_rps": 3.5,
	} {
		if got := s.extra[unit]; got != want {
			t.Errorf("extra %s = %v, want %v", unit, got, want)
		}
	}
}
