package main

import (
	"os"
	"path/filepath"
	"testing"
)

func s(ns, allocs float64) *sample { return &sample{n: 1, nsOp: ns, allocsOp: allocs} }

// TestFindRegressions pins the CI gate's comparison logic: ns/op and
// allocs/op are both gated, zero-alloc baselines trip on any increase,
// improvements and below-threshold noise pass, and benchmarks present in
// only one file are ignored.
func TestFindRegressions(t *testing.T) {
	before := map[string]*sample{
		"BenchmarkFast":      s(100, 10),
		"BenchmarkZeroAlloc": s(100, 0),
		"BenchmarkNoisy":     s(100, 100),
		"BenchmarkImproved":  s(100, 10),
		"BenchmarkGone":      s(100, 10),
		"BenchmarkBothWorse": s(100, 10),
	}
	after := map[string]*sample{
		"BenchmarkFast":      s(125, 10),  // +25% ns/op
		"BenchmarkZeroAlloc": s(100, 1),   // 0 -> 1 alloc: always trips
		"BenchmarkNoisy":     s(105, 105), // +5%: under threshold
		"BenchmarkImproved":  s(50, 2),    // improvements never trip
		"BenchmarkNew":       s(100, 10),  // no baseline: ignored
		"BenchmarkBothWorse": s(200, 30),  // both metrics regressed
	}
	got := findRegressions(before, after, 10)
	want := []struct {
		name, metric string
		fromZero     bool
	}{
		{"BothWorse", "ns/op", false},
		{"BothWorse", "allocs/op", false},
		{"Fast", "ns/op", false},
		{"ZeroAlloc", "allocs/op", true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d regressions %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if got[i].name != w.name || got[i].metric != w.metric || got[i].fromZero != w.fromZero {
			t.Errorf("regression %d = %+v, want %+v", i, got[i], w)
		}
	}
	if got[0].pct <= 10 || got[2].pct != 25 {
		t.Errorf("percentages wrong: %v", got)
	}

	// Threshold 0 disables the gate entirely.
	if r := findRegressions(before, after, 0); r != nil {
		t.Errorf("threshold 0 produced regressions: %v", r)
	}
	// Exactly at the threshold is not a regression (strictly-beyond gate).
	atEdge := map[string]*sample{"BenchmarkFast": s(110, 11)}
	if r := findRegressions(map[string]*sample{"BenchmarkFast": s(100, 10)}, atEdge, 10); r != nil {
		t.Errorf("edge case tripped the gate: %v", r)
	}
}

// TestMemoryGateMetrics pins the higher-is-worse gate on the custom
// memory metrics: peak_rss_mb and allocs_total regressions trip like
// ns/op, improvements pass, and a metric absent from the before file is
// skipped (old baselines cannot gate a metric that postdates them).
func TestMemoryGateMetrics(t *testing.T) {
	mem := func(ns, rss, allocs float64) *sample {
		s := s(ns, 10)
		s.extra = map[string]float64{}
		if rss > 0 {
			s.extra["peak_rss_mb"] = rss
		}
		if allocs > 0 {
			s.extra["allocs_total"] = allocs
		}
		return s
	}
	before := map[string]*sample{
		"BenchmarkMemWorse":  mem(100, 200, 1e6),
		"BenchmarkMemBetter": mem(100, 200, 1e6),
		"BenchmarkNoBase":    s(100, 10), // before file predates the metrics
	}
	after := map[string]*sample{
		"BenchmarkMemWorse":  mem(100, 260, 1.5e6), // +30% RSS, +50% allocs
		"BenchmarkMemBetter": mem(100, 150, 5e5),
		"BenchmarkNoBase":    mem(100, 999, 9e9),
	}
	got := findRegressions(before, after, 10)
	if len(got) != 2 {
		t.Fatalf("got %d regressions %v, want 2", len(got), got)
	}
	if got[0].name != "MemWorse" || got[0].metric != "peak_rss_mb" || got[0].pct != 30 {
		t.Errorf("regression 0 = %+v, want MemWorse peak_rss_mb +30%%", got[0])
	}
	if got[1].name != "MemWorse" || got[1].metric != "allocs_total" || got[1].pct != 50 {
		t.Errorf("regression 1 = %+v, want MemWorse allocs_total +50%%", got[1])
	}
}

// TestParseFileExtraMetrics checks the parse path end to end on a line
// carrying custom b.ReportMetric units: bare-word units are collected,
// the slash-bearing built-ins are not double-counted, and averaging over
// -count runs applies to extras too.
func TestParseFileExtraMetrics(t *testing.T) {
	dir := t.TempDir()
	txt := "BenchmarkFederatedSweepMemory-8  2  3100000000 ns/op  2000000 B/op  9000 allocs/op  1200000 allocs_total  210.0 peak_rss_mb  4.000 studiesPerSweep\n" +
		"BenchmarkFederatedSweepMemory-8  2  3300000000 ns/op  2000000 B/op  9000 allocs/op  1400000 allocs_total  230.0 peak_rss_mb  4.000 studiesPerSweep\n"
	path := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(path, []byte(txt), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := got["BenchmarkFederatedSweepMemory"]
	if s == nil {
		t.Fatal("benchmark not parsed")
	}
	if s.n != 2 || s.allocsOp != 9000 {
		t.Fatalf("n=%d allocsOp=%v, want 2 runs at 9000 allocs/op", s.n, s.allocsOp)
	}
	if s.extra["peak_rss_mb"] != 220 || s.extra["allocs_total"] != 1.3e6 {
		t.Fatalf("extras = %v, want averaged peak_rss_mb=220 allocs_total=1.3e6", s.extra)
	}
	if s.extra["studiesPerSweep"] != 4 {
		t.Fatalf("informational extra lost: %v", s.extra)
	}
}

// TestParseFileGatesAllocs runs the full parse path on plain bench output
// and checks the gate sees the allocs column — the end-to-end contract the
// Makefile's THRESHOLD relies on.
func TestParseFileGatesAllocs(t *testing.T) {
	dir := t.TempDir()
	beforeTxt := "BenchmarkPump-8  1000  200.0 ns/op  16 B/op  0 allocs/op\n"
	afterTxt := "BenchmarkPump-8  1000  201.0 ns/op  64 B/op  3 allocs/op\n"
	bPath := filepath.Join(dir, "before.txt")
	aPath := filepath.Join(dir, "after.txt")
	if err := os.WriteFile(bPath, []byte(beforeTxt), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aPath, []byte(afterTxt), 0o644); err != nil {
		t.Fatal(err)
	}
	before, err := parseFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	after, err := parseFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	got := findRegressions(before, after, 5)
	if len(got) != 1 || got[0].metric != "allocs/op" || !got[0].fromZero {
		t.Fatalf("regressions = %v, want one zero-alloc allocs/op trip", got)
	}
}
