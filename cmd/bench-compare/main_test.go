package main

import (
	"os"
	"path/filepath"
	"testing"
)

func s(ns, allocs float64) *sample { return &sample{n: 1, nsOp: ns, allocsOp: allocs} }

// TestFindRegressions pins the CI gate's comparison logic: ns/op and
// allocs/op are both gated, zero-alloc baselines trip on any increase,
// improvements and below-threshold noise pass, and benchmarks present in
// only one file are ignored.
func TestFindRegressions(t *testing.T) {
	before := map[string]*sample{
		"BenchmarkFast":      s(100, 10),
		"BenchmarkZeroAlloc": s(100, 0),
		"BenchmarkNoisy":     s(100, 100),
		"BenchmarkImproved":  s(100, 10),
		"BenchmarkGone":      s(100, 10),
		"BenchmarkBothWorse": s(100, 10),
	}
	after := map[string]*sample{
		"BenchmarkFast":      s(125, 10),  // +25% ns/op
		"BenchmarkZeroAlloc": s(100, 1),   // 0 -> 1 alloc: always trips
		"BenchmarkNoisy":     s(105, 105), // +5%: under threshold
		"BenchmarkImproved":  s(50, 2),    // improvements never trip
		"BenchmarkNew":       s(100, 10),  // no baseline: ignored
		"BenchmarkBothWorse": s(200, 30),  // both metrics regressed
	}
	got := findRegressions(before, after, 10)
	want := []struct {
		name, metric string
		fromZero     bool
	}{
		{"BothWorse", "ns/op", false},
		{"BothWorse", "allocs/op", false},
		{"Fast", "ns/op", false},
		{"ZeroAlloc", "allocs/op", true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d regressions %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		if got[i].name != w.name || got[i].metric != w.metric || got[i].fromZero != w.fromZero {
			t.Errorf("regression %d = %+v, want %+v", i, got[i], w)
		}
	}
	if got[0].pct <= 10 || got[2].pct != 25 {
		t.Errorf("percentages wrong: %v", got)
	}

	// Threshold 0 disables the gate entirely.
	if r := findRegressions(before, after, 0); r != nil {
		t.Errorf("threshold 0 produced regressions: %v", r)
	}
	// Exactly at the threshold is not a regression (strictly-beyond gate).
	atEdge := map[string]*sample{"BenchmarkFast": s(110, 11)}
	if r := findRegressions(map[string]*sample{"BenchmarkFast": s(100, 10)}, atEdge, 10); r != nil {
		t.Errorf("edge case tripped the gate: %v", r)
	}
}

// TestParseFileGatesAllocs runs the full parse path on plain bench output
// and checks the gate sees the allocs column — the end-to-end contract the
// Makefile's THRESHOLD relies on.
func TestParseFileGatesAllocs(t *testing.T) {
	dir := t.TempDir()
	beforeTxt := "BenchmarkPump-8  1000  200.0 ns/op  16 B/op  0 allocs/op\n"
	afterTxt := "BenchmarkPump-8  1000  201.0 ns/op  64 B/op  3 allocs/op\n"
	bPath := filepath.Join(dir, "before.txt")
	aPath := filepath.Join(dir, "after.txt")
	if err := os.WriteFile(bPath, []byte(beforeTxt), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(aPath, []byte(afterTxt), 0o644); err != nil {
		t.Fatal(err)
	}
	before, err := parseFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	after, err := parseFile(aPath)
	if err != nil {
		t.Fatal(err)
	}
	got := findRegressions(before, after, 5)
	if len(got) != 1 || got[0].metric != "allocs/op" || !got[0].fromZero {
		t.Fatalf("regressions = %v, want one zero-alloc allocs/op trip", got)
	}
}
