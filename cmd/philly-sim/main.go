// Command philly-sim runs one cluster simulation and writes its artifacts:
// the job trace (CSV + JSON, in the spirit of the public Philly traces) and
// a run summary.
//
// Usage:
//
//	philly-sim [-scale small|medium|full] [-seed N] [-workers N]
//	           [-shard-events] [-federation SPEC] [-pattern NAME]
//	           [-replay FILE] [-faults SPEC] [-checkpoint SPEC] [-out DIR]
//
// -faults enables correlated infrastructure outages ("none", "all", or a
// "+"-joined subset of server, rack, cluster with an optional ":SCALE"
// frequency multiplier, e.g. "server+rack:2"); -checkpoint enables the
// periodic checkpoint/restore cost model ("off" or
// "MIN[:WRITE_S[:RESTORE_S]]", interval in minutes, costs in seconds).
// Both compose with -federation: every member runs under the same fault
// and checkpoint model, and members hit by a large outage evacuate
// restorable jobs to the member with the most free GPUs.
//
// -pattern runs the workload under a temporal phase program (diurnal,
// weekly, ...; philly-trace pattern lists them); -replay runs a trace file
// (philly-trace spec CSV, a previous run's jobs.csv/trace.json, or the
// msr-fiddle philly-traces JSON) instead of the generative workload.
//
// -workers shards the study's telemetry walk and placement scoring across
// that many cores (default: all), and -shard-events (default on, effective
// when -workers > 1) additionally partitions the event loop itself per
// virtual cluster with a deterministic virtual-time-window merge. Output
// is bit-identical for any worker count and either engine; only wall-clock
// changes. To sweep many studies instead, use philly-sweep, whose -workers
// flag is the same budget spent across studies first.
//
// -federation runs a multi-cluster study instead: SPEC is a "+"-separated
// list of member presets (e.g. "philly-small+helios-like"; see philly-sim
// -federation help for the list). Member clusters advance in one virtual
// timeline with job spillover and fleet-wide quota rebalancing at window
// barriers; per-member artifacts land in out/<member>/ and the fleet
// comparison table prints to stdout. Bit-identical for any -workers.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"philly"
	"philly/internal/profiling"
)

func main() {
	scale := flag.String("scale", "small", "study scale: small, medium or full")
	seed := flag.Uint64("seed", 1, "master random seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"intra-study worker count (results are identical for any value)")
	shardEvents := flag.Bool("shard-events", true,
		"shard the event loop per virtual cluster when -workers > 1 (results are identical either way)")
	federationSpec := flag.String("federation", "",
		"run a federated multi-cluster study of these '+'-separated member presets (e.g. philly-small+helios-like); 'help' lists presets")
	pattern := flag.String("pattern", "",
		"temporal workload pattern preset (see philly-trace pattern); 'help' lists presets")
	replayPath := flag.String("replay", "",
		"replay this trace file (.csv or .json) instead of generating a workload")
	faultsSpec := flag.String("faults", "",
		"enable correlated outages: none, all, or server[+rack][+cluster], optionally :SCALE (e.g. server+rack:2)")
	checkpointSpec := flag.String("checkpoint", "",
		"enable the checkpoint/restore cost model: off or MIN[:WRITE_S[:RESTORE_S]] (minutes, then seconds)")
	out := flag.String("out", "philly-out", "output directory")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a GC-settled heap profile to this file at exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-sim:", err)
		os.Exit(2)
	}

	// Fail fast on malformed reliability specs, before any simulation work.
	var faultsCfg philly.FaultsConfig
	if *faultsSpec != "" {
		var err error
		faultsCfg, err = philly.ParseFaultsSpec(*faultsSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "philly-sim:", err)
			os.Exit(2)
		}
	}
	var checkpointCfg philly.CheckpointConfig
	if *checkpointSpec != "" {
		var err error
		checkpointCfg, err = philly.ParseCheckpointSpec(*checkpointSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "philly-sim:", err)
			os.Exit(2)
		}
	}

	if *pattern == "help" {
		fmt.Println("workload pattern presets:", strings.Join(philly.WorkloadPatternNames(), ", "))
		return
	}

	if *federationSpec != "" {
		// Member scale comes from the presets; silently dropping an
		// explicit -scale would misread as a scaled federated run.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				fmt.Fprintln(os.Stderr, "philly-sim: -scale is incompatible with -federation (member presets fix each cluster's scale)")
				os.Exit(2)
			}
			if f.Name == "pattern" || f.Name == "replay" {
				fmt.Fprintf(os.Stderr, "philly-sim: -%s is incompatible with -federation here; use philly-sweep's workload.%s axis with fleet.members instead\n",
					f.Name, map[string]string{"pattern": "pattern", "replay": "trace"}[f.Name])
				os.Exit(2)
			}
		})
		if err := runFederation(*federationSpec, *seed, *workers, *out,
			*faultsSpec != "", faultsCfg, *checkpointSpec != "", checkpointCfg); err != nil {
			fmt.Fprintln(os.Stderr, "philly-sim:", err)
			os.Exit(1)
		}
		return
	}

	var cfg philly.Config
	switch *scale {
	case "small":
		cfg = philly.SmallConfig()
	case "medium":
		cfg = philly.DefaultConfig()
		cfg.Workload.TotalJobs /= 4
		cfg.Workload.Duration /= 4
		cfg.Workload.MaxRuntimeMinutes = 7 * 24 * 60
	case "full":
		cfg = philly.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "philly-sim: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed
	if *faultsSpec != "" {
		cfg.Faults = faultsCfg
	}
	if *checkpointSpec != "" {
		cfg.Checkpoint = checkpointCfg
	}
	if *pattern != "" && *replayPath != "" {
		// ApplyReplay would silently drop the pattern (the trace is the
		// temporal authority); at the CLI that combination is a mistake.
		fmt.Fprintln(os.Stderr, "philly-sim: -pattern and -replay are mutually exclusive (a replayed trace already fixes the arrival timeline)")
		os.Exit(2)
	}
	if *pattern != "" {
		p, err := philly.PresetWorkloadPattern(*pattern)
		if err != nil {
			fmt.Fprintln(os.Stderr, "philly-sim:", err)
			os.Exit(2)
		}
		cfg.Workload.Pattern = p
	}
	if *replayPath != "" {
		opts := philly.DefaultReplayOptions()
		opts.Seed = *seed
		specs, err := philly.LoadTrace(*replayPath, opts)
		if err == nil {
			err = philly.ApplyReplay(&cfg, specs)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "philly-sim:", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	res, err := philly.RunWith(cfg, philly.RunOptions{
		Workers:     *workers,
		ShardEvents: *shardEvents && *workers != 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-sim:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "philly-sim:", err)
		os.Exit(1)
	}

	tr := philly.NewTrace(res)
	csvPath := filepath.Join(*out, "jobs.csv")
	jsonPath := filepath.Join(*out, "trace.json")
	if err := writeFile(csvPath, tr.WriteJobsCSV); err != nil {
		fmt.Fprintln(os.Stderr, "philly-sim:", err)
		os.Exit(1)
	}
	if err := writeFile(jsonPath, tr.WriteJSON); err != nil {
		fmt.Fprintln(os.Stderr, "philly-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("simulated %d jobs on %d GPUs in %v (simulated %v)\n",
		len(res.Jobs), res.TotalGPUs, time.Since(start).Round(time.Millisecond), res.SimEnd)
	fmt.Printf("scheduler: %d placement search(es), %d cache short-circuit(s), %d speculative commit(s), %d conflict(s)\n",
		res.Sched.PlacementSearches, res.Sched.CacheShortCircuits,
		res.Sched.SpeculativeCommits, res.Sched.SpeculativeConflicts)
	if o := res.Outages; o.Events > 0 {
		fmt.Printf("outages: %d event(s) (%d maintenance), %d attempt(s) killed, %.1f GPU-h down, %.1f GPU-h lost, %.1f GPU-h ckpt overhead, ETTF %.1fh, ETTR %.2fh\n",
			o.Events, o.MaintenanceEvents, o.KilledAttempts,
			o.DownGPUHours, o.LostGPUHours, o.CkptOverheadGPUHours,
			o.ETTFHours, o.ETTRHours)
	}
	fmt.Printf("wrote %s (%d jobs) and %s (%d attempts)\n",
		csvPath, len(tr.Jobs), jsonPath, len(tr.Attempts))
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "philly-sim:", err)
		os.Exit(1)
	}
}

// runFederation executes a federated multi-cluster study and writes one
// artifact directory per member plus the fleet comparison table. The
// fault and checkpoint models, when set, apply to every member.
func runFederation(spec string, seed uint64, workers int, out string,
	haveFaults bool, faultsCfg philly.FaultsConfig,
	haveCkpt bool, checkpointCfg philly.CheckpointConfig) error {
	if spec == "help" {
		fmt.Println("federation member presets:", strings.Join(philly.FederationPresets(), ", "))
		return nil
	}
	cfg, err := philly.ParseFederationSpec(seed, spec)
	if err != nil {
		return err
	}
	for i := range cfg.Members {
		if haveFaults {
			cfg.Members[i].Config.Faults = faultsCfg.Clone()
		}
		if haveCkpt {
			cfg.Members[i].Config.Checkpoint = checkpointCfg
		}
	}
	start := time.Now()
	res, err := philly.RunFederated(cfg, philly.RunOptions{Workers: workers})
	if err != nil {
		return err
	}
	for _, m := range res.Members {
		dir := filepath.Join(out, m.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		tr := philly.NewTrace(m.Result)
		if err := writeFile(filepath.Join(dir, "jobs.csv"), tr.WriteJobsCSV); err != nil {
			return err
		}
		if err := writeFile(filepath.Join(dir, "trace.json"), tr.WriteJSON); err != nil {
			return err
		}
		fmt.Printf("member %-16s %d jobs on %d GPUs (simulated %v, %d search(es), %d cached, %d speculative) -> %s\n",
			m.Name, len(m.Result.Jobs), m.Result.TotalGPUs, m.Result.SimEnd,
			m.Result.Sched.PlacementSearches, m.Result.Sched.CacheShortCircuits,
			m.Result.Sched.SpeculativeCommits, dir)
	}
	fmt.Printf("fleet: %d spillover move(s) over %d check(s), %d quota change(s) over %d rebalance tick(s), wall %v\n",
		res.Fleet.SpilloverMoves, res.Fleet.SpilloverChecks,
		res.Fleet.QuotaChanges, res.Fleet.RebalanceTicks,
		time.Since(start).Round(time.Millisecond))
	fmt.Println(philly.AnalyzeFleet(res).Render())
	return nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
