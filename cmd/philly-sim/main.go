// Command philly-sim runs one cluster simulation and writes its artifacts:
// the job trace (CSV + JSON, in the spirit of the public Philly traces) and
// a run summary.
//
// Usage:
//
//	philly-sim [-scale small|medium|full] [-seed N] [-workers N]
//	           [-shard-events] [-out DIR]
//
// -workers shards the study's telemetry walk and placement scoring across
// that many cores (default: all), and -shard-events (default on, effective
// when -workers > 1) additionally partitions the event loop itself per
// virtual cluster with a deterministic virtual-time-window merge. Output
// is bit-identical for any worker count and either engine; only wall-clock
// changes. To sweep many studies instead, use philly-sweep, whose -workers
// flag is the same budget spent across studies first.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"philly"
)

func main() {
	scale := flag.String("scale", "small", "study scale: small, medium or full")
	seed := flag.Uint64("seed", 1, "master random seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"intra-study worker count (results are identical for any value)")
	shardEvents := flag.Bool("shard-events", true,
		"shard the event loop per virtual cluster when -workers > 1 (results are identical either way)")
	out := flag.String("out", "philly-out", "output directory")
	flag.Parse()

	var cfg philly.Config
	switch *scale {
	case "small":
		cfg = philly.SmallConfig()
	case "medium":
		cfg = philly.DefaultConfig()
		cfg.Workload.TotalJobs /= 4
		cfg.Workload.Duration /= 4
		cfg.Workload.MaxRuntimeMinutes = 7 * 24 * 60
	case "full":
		cfg = philly.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "philly-sim: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed

	start := time.Now()
	res, err := philly.RunWith(cfg, philly.RunOptions{
		Workers:     *workers,
		ShardEvents: *shardEvents && *workers != 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-sim:", err)
		os.Exit(1)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "philly-sim:", err)
		os.Exit(1)
	}

	tr := philly.NewTrace(res)
	csvPath := filepath.Join(*out, "jobs.csv")
	jsonPath := filepath.Join(*out, "trace.json")
	if err := writeFile(csvPath, tr.WriteJobsCSV); err != nil {
		fmt.Fprintln(os.Stderr, "philly-sim:", err)
		os.Exit(1)
	}
	if err := writeFile(jsonPath, tr.WriteJSON); err != nil {
		fmt.Fprintln(os.Stderr, "philly-sim:", err)
		os.Exit(1)
	}

	fmt.Printf("simulated %d jobs on %d GPUs in %v (simulated %v)\n",
		len(res.Jobs), res.TotalGPUs, time.Since(start).Round(time.Millisecond), res.SimEnd)
	fmt.Printf("wrote %s (%d jobs) and %s (%d attempts)\n",
		csvPath, len(tr.Jobs), jsonPath, len(tr.Attempts))
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
