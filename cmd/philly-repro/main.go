// Command philly-repro regenerates every table and figure of the paper in
// one run and prints them with the paper's values alongside.
//
// Usage:
//
//	philly-repro [-scale small|medium|full] [-seed N] [-policy philly|fifo|srtf|tiresias|gandiva]
//	             [-replicas N] [-workers N] [-shard-events] [-federation SPEC]
//	             [-faults SPEC] [-checkpoint SPEC] [-o report.txt]
//
// -faults and -checkpoint enable the correlated-outage engine and the
// checkpoint/restore cost model (same specs as philly-sim); they apply to
// every run of every path, including each member of a -federation study.
//
// small  (~230 GPUs, 3.3k jobs) finishes in under a second;
// medium (~2300 GPUs, 24k jobs) in tens of seconds;
// full   (paper scale: ~2300 GPUs, 96,260 jobs over 75 days) in minutes.
//
// -policy also accepts a comma-separated list; with several policies (or
// with -replicas > 1) the multi-run loop goes through the internal/sweep
// harness and prints a cross-scenario comparison table instead of the full
// report — replicated over seeds, with 95% confidence intervals.
//
// -workers (default: all cores) is one shared parallelism budget. A single
// run spends it *within* the study (sharded telemetry walk, placement
// scoring); the multi-run path hands it to the sweep harness, which spends
// it *across* studies first and lets idle workers accelerate the stragglers
// — the two layers draw from the same pool and never oversubscribe. Results
// are bit-identical for any worker count.
//
// -shard-events (default on, effective when -workers > 1) also partitions
// the event loop per virtual cluster with a deterministic
// virtual-time-window merge; the sweep path applies it to every study.
// Either way, results are bit-identical to the sequential engine.
//
// -federation runs a multi-cluster study instead of a single cluster: SPEC
// is a "+"-separated member preset list (e.g. "philly-small+helios-like"),
// the -policy flag (single policy) applies to every member, and the output
// is the fleet comparison table — per-member and combined queueing,
// utilization and failure aggregates. Use philly-sweep's fleet.members
// axis to cross federations with policies and replicas.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"philly"
	"philly/internal/sweep"
)

func main() {
	scale := flag.String("scale", "small", "study scale: small, medium or full")
	seed := flag.Uint64("seed", 1, "master random seed")
	policy := flag.String("policy", "philly", "scheduling policy (comma-separated list sweeps): philly, fifo, srtf, tiresias, gandiva")
	replicas := flag.Int("replicas", 1, "seed replicas; > 1 switches to the sweep comparison table")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"shared worker budget: across studies when sweeping, within the study otherwise")
	shardEvents := flag.Bool("shard-events", true,
		"shard the event loop per virtual cluster when -workers > 1 (results are identical either way)")
	federationSpec := flag.String("federation", "",
		"run a federated multi-cluster study of these '+'-separated member presets; the fleet table replaces the per-figure report")
	faultsSpec := flag.String("faults", "",
		"enable correlated outages: none, all, or server[+rack][+cluster], optionally :SCALE (e.g. server+rack:2)")
	checkpointSpec := flag.String("checkpoint", "",
		"enable the checkpoint/restore cost model: off or MIN[:WRITE_S[:RESTORE_S]] (minutes, then seconds)")
	out := flag.String("o", "", "also write the report to this file")
	flag.Parse()

	// Fail fast on malformed reliability specs, before any simulation work.
	var faultsCfg philly.FaultsConfig
	if *faultsSpec != "" {
		var err error
		faultsCfg, err = philly.ParseFaultsSpec(*faultsSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "philly-repro:", err)
			os.Exit(2)
		}
	}
	var checkpointCfg philly.CheckpointConfig
	if *checkpointSpec != "" {
		var err error
		checkpointCfg, err = philly.ParseCheckpointSpec(*checkpointSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "philly-repro:", err)
			os.Exit(2)
		}
	}
	applyReliability := func(c *philly.Config) {
		if *faultsSpec != "" {
			c.Faults = faultsCfg.Clone()
		}
		if *checkpointSpec != "" {
			c.Checkpoint = checkpointCfg
		}
	}

	if *federationSpec != "" {
		// Member scale comes from the presets and replication from
		// philly-sweep's fleet.members axis; silently dropping these flags
		// would misread as an aggregated full-scale result.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" || f.Name == "replicas" {
				fmt.Fprintf(os.Stderr, "philly-repro: -%s is incompatible with -federation (member presets fix the scale; use philly-sweep -axis fleet.members=... for replicas)\n", f.Name)
				os.Exit(2)
			}
		})
		if err := runFederation(*federationSpec, *seed, *policy, *workers, *out, applyReliability); err != nil {
			fmt.Fprintln(os.Stderr, "philly-repro:", err)
			os.Exit(1)
		}
		return
	}

	cfg, err := configFor(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Seed = *seed
	applyReliability(&cfg)

	if strings.Contains(*policy, ",") || *replicas > 1 {
		if err := runSweep(cfg, *scale, *policy, *replicas, *workers,
			*shardEvents && *workers != 1, *out); err != nil {
			fmt.Fprintln(os.Stderr, "philly-repro:", err)
			os.Exit(1)
		}
		return
	}

	cfg.Scheduler.Policy, err = parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	start := time.Now()
	res, err := philly.RunWith(cfg, philly.RunOptions{
		Workers:     *workers,
		ShardEvents: *shardEvents && *workers != 1,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-repro:", err)
		os.Exit(1)
	}
	report := philly.Analyze(res)
	fmt.Printf("scale=%s seed=%d policy=%s jobs=%d gpus=%d simulated=%v wall=%v\n\n",
		*scale, *seed, *policy, len(res.Jobs), res.TotalGPUs, res.SimEnd, time.Since(start).Round(time.Millisecond))
	fmt.Println(report.RenderAll())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "philly-repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := report.WriteAll(f); err != nil {
			fmt.Fprintln(os.Stderr, "philly-repro:", err)
			os.Exit(1)
		}
	}
}

// runSweep drives the multi-run path — several policies and/or several
// seed replicas — through the sweep harness and prints its comparison
// table. Per-run seeds derive from (seed, scenario, replica), so the table
// is reproducible independent of worker count.
func runSweep(cfg philly.Config, scale, policies string, replicas, workers int, shardEvents bool, out string) error {
	m := sweep.Matrix{Base: cfg}
	ax, err := sweep.ParseAxis("sched.policy=" + policies)
	if err != nil {
		return err
	}
	m.Axes = append(m.Axes, ax)
	start := time.Now()
	res, err := m.Run(sweep.Options{Replicas: replicas, Workers: workers, ShardEvents: shardEvents})
	if err != nil {
		return err
	}
	fmt.Printf("scale=%s seed=%d: policy comparison via sweep harness\n", scale, cfg.Seed)
	fmt.Print(res.RenderTable())
	fmt.Printf("wall: %v\n", time.Since(start).Round(time.Millisecond))
	if out != "" {
		if err := os.WriteFile(out, []byte(res.RenderTable()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runFederation drives the multi-cluster path: one federated study, the
// single -policy applied to every member, output as the fleet comparison
// table.
func runFederation(spec string, seed uint64, policy string, workers int, out string,
	applyReliability func(*philly.Config)) error {
	cfg, err := philly.ParseFederationSpec(seed, spec)
	if err != nil {
		return err
	}
	p, err := parsePolicy(policy)
	if err != nil {
		return err
	}
	for i := range cfg.Members {
		cfg.Members[i].Config.Scheduler.Policy = p
		applyReliability(&cfg.Members[i].Config)
	}
	start := time.Now()
	res, err := philly.RunFederated(cfg, philly.RunOptions{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Printf("federation=%s seed=%d policy=%s: %d spillover move(s), %d quota change(s), wall %v\n",
		spec, seed, policy, res.Fleet.SpilloverMoves, res.Fleet.QuotaChanges,
		time.Since(start).Round(time.Millisecond))
	table := philly.AnalyzeFleet(res).Render()
	fmt.Println(table)
	if out != "" {
		if err := os.WriteFile(out, []byte(table), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func configFor(scale string) (philly.Config, error) {
	switch scale {
	case "small":
		return philly.SmallConfig(), nil
	case "medium":
		return philly.MediumConfig(), nil
	case "full":
		return philly.DefaultConfig(), nil
	default:
		return philly.Config{}, fmt.Errorf("philly-repro: unknown scale %q", scale)
	}
}

func parsePolicy(s string) (philly.Policy, error) {
	switch s {
	case "philly":
		return philly.PolicyPhilly, nil
	case "fifo":
		return philly.PolicyFIFO, nil
	case "srtf":
		return philly.PolicySRTF, nil
	case "tiresias":
		return philly.PolicyTiresias, nil
	case "gandiva":
		return philly.PolicyGandiva, nil
	default:
		return 0, fmt.Errorf("philly-repro: unknown policy %q", s)
	}
}
