// Command philly-repro regenerates every table and figure of the paper in
// one run and prints them with the paper's values alongside.
//
// Usage:
//
//	philly-repro [-scale small|medium|full] [-seed N] [-policy philly|fifo|srtf|tiresias|gandiva] [-o report.txt]
//
// small  (~230 GPUs, 3.3k jobs) finishes in under a second;
// medium (~2300 GPUs, 24k jobs) in tens of seconds;
// full   (paper scale: ~2300 GPUs, 96,260 jobs over 75 days) in minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"philly"
)

func main() {
	scale := flag.String("scale", "small", "study scale: small, medium or full")
	seed := flag.Uint64("seed", 1, "master random seed")
	policy := flag.String("policy", "philly", "scheduling policy: philly, fifo, srtf, tiresias, gandiva")
	out := flag.String("o", "", "also write the report to this file")
	flag.Parse()

	cfg, err := configFor(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.Scheduler.Policy, err = parsePolicy(*policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	start := time.Now()
	res, err := philly.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-repro:", err)
		os.Exit(1)
	}
	report := philly.Analyze(res)
	fmt.Printf("scale=%s seed=%d policy=%s jobs=%d gpus=%d simulated=%v wall=%v\n\n",
		*scale, *seed, *policy, len(res.Jobs), res.TotalGPUs, res.SimEnd, time.Since(start).Round(time.Millisecond))
	fmt.Println(report.RenderAll())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "philly-repro:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := report.WriteAll(f); err != nil {
			fmt.Fprintln(os.Stderr, "philly-repro:", err)
			os.Exit(1)
		}
	}
}

func configFor(scale string) (philly.Config, error) {
	switch scale {
	case "small":
		return philly.SmallConfig(), nil
	case "medium":
		cfg := philly.DefaultConfig()
		cfg.Workload.TotalJobs /= 4
		cfg.Workload.Duration /= 4
		cfg.Workload.MaxRuntimeMinutes = 7 * 24 * 60
		return cfg, nil
	case "full":
		return philly.DefaultConfig(), nil
	default:
		return philly.Config{}, fmt.Errorf("philly-repro: unknown scale %q", scale)
	}
}

func parsePolicy(s string) (philly.Policy, error) {
	switch s {
	case "philly":
		return philly.PolicyPhilly, nil
	case "fifo":
		return philly.PolicyFIFO, nil
	case "srtf":
		return philly.PolicySRTF, nil
	case "tiresias":
		return philly.PolicyTiresias, nil
	case "gandiva":
		return philly.PolicyGandiva, nil
	default:
		return 0, fmt.Errorf("philly-repro: unknown policy %q", s)
	}
}
