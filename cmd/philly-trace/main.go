// Command philly-trace generates a synthetic workload (without simulating
// its execution) and prints its composition, or writes the job list as CSV.
// It is the trace-generator half of the reproduction: the distributions
// behind it are calibrated to the aggregates the paper publishes.
//
// Usage:
//
//	philly-trace [-jobs N] [-days D] [-seed S] [-csv out.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"philly/internal/failures"
	"philly/internal/simulation"
	"philly/internal/stats"
	"philly/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 96260, "number of jobs to generate")
	days := flag.Int("days", 75, "trace duration in days")
	seed := flag.Uint64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "write the generated job list to this CSV file")
	flag.Parse()

	cfg := workload.DefaultConfig()
	cfg.TotalJobs = *jobs
	cfg.Duration = simulation.Time(*days) * simulation.Day
	g := stats.NewRNG(*seed).Split("workload")
	gen, err := workload.NewGenerator(cfg, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-trace:", err)
		os.Exit(1)
	}
	specs := gen.Generate(g)

	sizeCounts := map[int]int{}
	outcomes := map[failures.Outcome]int{}
	users := map[string]bool{}
	vcs := map[string]int{}
	for _, j := range specs {
		sizeCounts[j.GPUs]++
		outcomes[j.Plan.Outcome]++
		users[j.User] = true
		vcs[j.VC]++
	}
	fmt.Printf("generated %d jobs over %d days (%d users, %d VCs)\n",
		len(specs), *days, len(users), len(vcs))
	fmt.Println("size mix:")
	for _, s := range []int{1, 2, 4, 8, 16, 24, 32} {
		if sizeCounts[s] > 0 {
			fmt.Printf("  %2d GPUs: %6d (%.1f%%)\n", s, sizeCounts[s],
				100*float64(sizeCounts[s])/float64(len(specs)))
		}
	}
	fmt.Println("planned outcomes:")
	for o := failures.Outcome(0); o < 3; o++ {
		fmt.Printf("  %-13s %6d (%.1f%%)\n", o, outcomes[o],
			100*float64(outcomes[o])/float64(len(specs)))
	}

	if *csvPath == "" {
		return
	}
	f, err := os.Create(*csvPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-trace:", err)
		os.Exit(1)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write([]string{"jobid", "vc", "user", "num_gpus", "submitted_time", "planned_runtime_min", "planned_outcome"}); err != nil {
		fmt.Fprintln(os.Stderr, "philly-trace:", err)
		os.Exit(1)
	}
	for _, j := range specs {
		rec := []string{
			strconv.FormatInt(j.ID, 10), j.VC, j.User, strconv.Itoa(j.GPUs),
			strconv.FormatFloat(j.SubmitAt.Minutes(), 'f', 3, 64),
			strconv.FormatFloat(j.PlannedRuntimeMinutes(), 'f', 3, 64),
			j.Plan.Outcome.String(),
		}
		if err := w.Write(rec); err != nil {
			fmt.Fprintln(os.Stderr, "philly-trace:", err)
			os.Exit(1)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fmt.Fprintln(os.Stderr, "philly-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *csvPath)
}
