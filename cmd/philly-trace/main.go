// Command philly-trace is the trace half of the reproduction: it generates
// a synthetic workload (without simulating its execution), replays a trace
// file into a study, and describes the temporal workload patterns.
//
// Usage:
//
//	philly-trace [generate] [-jobs N] [-days D] [-seed S] [-pattern NAME] [-csv out.csv]
//	philly-trace replay -in trace.{csv,json} [-seed S] [-rate-scale X]
//	            [-time-compress X] [-mix-shift 1:0.2,8:0.8] [-csv out.csv]
//	            [-run] [-scale small|medium|full] [-workers N]
//	philly-trace pattern [NAME]
//
// generate emits the planned job stream in the full-fidelity spec CSV
// schema, which replay reads back bit-exactly: generating a trace and
// replaying it reproduces the generator study's job population exactly.
// replay also ingests this repository's observed-trace exports (philly-sim
// CSV/JSON) and the msr-fiddle philly-traces JSON format, with
// deterministic what-if transforms. pattern lists the phase-program
// presets usable with -pattern here, philly-sim, and the workload.pattern
// sweep axis.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"philly"
	"philly/internal/failures"
	"philly/internal/simulation"
	"philly/internal/stats"
	"philly/internal/trace"
	"philly/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "philly-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	mode := "generate"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		mode, args = args[0], args[1:]
	}
	switch mode {
	case "generate":
		return runGenerate(args)
	case "replay":
		return runReplay(args)
	case "pattern":
		return runPattern(args)
	}
	return fmt.Errorf("unknown mode %q (want generate, replay or pattern)", mode)
}

func runGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	jobs := fs.Int("jobs", 96260, "number of jobs to generate (must be > 0)")
	days := fs.Int("days", 75, "trace duration in days (must be > 0)")
	seed := fs.Uint64("seed", 1, "random seed")
	pattern := fs.String("pattern", "", "temporal pattern preset (see philly-trace pattern)")
	csvPath := fs.String("csv", "", "write the generated job stream to this spec CSV file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jobs <= 0 {
		return fmt.Errorf("-jobs must be positive, got %d", *jobs)
	}
	if *days <= 0 {
		return fmt.Errorf("-days must be positive, got %d", *days)
	}

	cfg := workload.DefaultConfig()
	cfg.TotalJobs = *jobs
	cfg.Duration = simulation.Time(*days) * simulation.Day
	if *pattern != "" {
		p, err := workload.PresetPattern(*pattern)
		if err != nil {
			return err
		}
		cfg.Pattern = p
	}
	g := stats.NewRNG(*seed).Split("workload")
	gen, err := workload.NewGenerator(cfg, g)
	if err != nil {
		return err
	}
	specs := gen.Generate(g)
	if len(specs) == 0 {
		return fmt.Errorf("generated an empty trace")
	}
	fmt.Printf("generated %d jobs over %d days", len(specs), *days)
	if *pattern != "" {
		fmt.Printf(" (pattern %s)", *pattern)
	}
	fmt.Println()
	summarize(specs)
	if *csvPath == "" {
		return nil
	}
	if err := writeSpecs(*csvPath, specs); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *csvPath)
	return nil
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "trace file to replay (.csv or .json; required)")
	seed := fs.Uint64("seed", 1, "seed for reconstruction and transform draws")
	rateScale := fs.Float64("rate-scale", 1, "arrival-rate multiplier (what-if transform)")
	timeCompress := fs.Float64("time-compress", 1, "timeline divisor: arrivals and runtimes (what-if transform)")
	mixShift := fs.String("mix-shift", "", "resample GPU sizes from SIZE:WEIGHT,... (what-if transform)")
	csvPath := fs.String("csv", "", "write the replayable job stream to this spec CSV file")
	doRun := fs.Bool("run", false, "simulate the replayed trace and print a study summary")
	scale := fs.String("scale", "full", "cluster scale for -run: small, medium or full")
	workers := fs.Int("workers", 0, "worker budget for -run (<= 0 means all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("replay requires -in")
	}
	opts := philly.DefaultReplayOptions()
	opts.Seed = *seed
	specs, err := philly.LoadTrace(*in, opts)
	if err != nil {
		return err
	}
	tr := philly.TraceTransform{RateScale: *rateScale, TimeCompress: *timeCompress, Seed: *seed}
	if *mixShift != "" {
		if tr.MixShift, err = parseMixShift(*mixShift); err != nil {
			return err
		}
	}
	if specs, err = tr.Apply(specs); err != nil {
		return err
	}
	fmt.Printf("loaded %d jobs from %s\n", len(specs), *in)
	summarize(specs)
	if *csvPath != "" {
		if err := writeSpecs(*csvPath, specs); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if !*doRun {
		return nil
	}
	var cfg philly.Config
	switch *scale {
	case "small":
		cfg = philly.SmallConfig()
	case "medium":
		cfg = philly.MediumConfig()
	case "full":
		cfg = philly.DefaultConfig()
	default:
		return fmt.Errorf("unknown -scale %q (want small, medium or full)", *scale)
	}
	cfg.Seed = *seed
	if err := philly.ApplyReplay(&cfg, specs); err != nil {
		return err
	}
	res, err := philly.RunParallel(cfg, *workers)
	if err != nil {
		return err
	}
	printStudySummary(res)
	return nil
}

func runPattern(args []string) error {
	fs := flag.NewFlagSet("pattern", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := fs.Args()
	if len(names) == 0 {
		names = philly.WorkloadPatternNames()
		fmt.Println("workload pattern presets:")
	}
	for _, name := range names {
		p, err := philly.PresetWorkloadPattern(name)
		if err != nil {
			return err
		}
		fmt.Printf("  %s\n", p)
	}
	return nil
}

func writeSpecs(path string, specs []workload.JobSpec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteSpecsCSV(f, specs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// summarize prints the stream's composition: size mix, planned outcomes,
// population counts.
func summarize(specs []workload.JobSpec) {
	sizeCounts := map[int]int{}
	outcomes := map[failures.Outcome]int{}
	users := map[string]bool{}
	vcs := map[string]int{}
	for i := range specs {
		j := &specs[i]
		sizeCounts[j.GPUs]++
		outcomes[j.Plan.Outcome]++
		users[j.User] = true
		vcs[j.VC]++
	}
	fmt.Printf("population: %d users, %d VCs\n", len(users), len(vcs))
	sizes := make([]int, 0, len(sizeCounts))
	for s := range sizeCounts {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	fmt.Println("size mix:")
	for _, s := range sizes {
		fmt.Printf("  %3d GPUs: %6d (%.1f%%)\n", s, sizeCounts[s],
			100*float64(sizeCounts[s])/float64(len(specs)))
	}
	fmt.Println("planned outcomes:")
	for o := failures.Outcome(0); o < 3; o++ {
		fmt.Printf("  %-13s %6d (%.1f%%)\n", o, outcomes[o],
			100*float64(outcomes[o])/float64(len(specs)))
	}
}

func printStudySummary(res *philly.StudyResult) {
	var completed int
	var delays []float64
	for i := range res.Jobs {
		j := &res.Jobs[i]
		if !j.Completed || j.Offloaded {
			continue
		}
		completed++
		delays = append(delays, j.FirstQueueDelay.Minutes())
	}
	sort.Float64s(delays)
	pct := func(p float64) float64 {
		if len(delays) == 0 {
			return 0
		}
		i := int(p * float64(len(delays)-1))
		return delays[i]
	}
	fmt.Printf("study: %d jobs completed; queue delay p50 %.1f min, p95 %.1f min\n",
		completed, pct(0.50), pct(0.95))
}

// parseMixShift parses "SIZE:WEIGHT,SIZE:WEIGHT,..." into size weights.
func parseMixShift(s string) (map[int]float64, error) {
	out := map[int]float64{}
	for _, part := range strings.Split(s, ",") {
		sizeStr, wStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("mix-shift entry %q is not SIZE:WEIGHT", part)
		}
		size, err := strconv.Atoi(sizeStr)
		if err != nil {
			return nil, fmt.Errorf("mix-shift size %q: %w", sizeStr, err)
		}
		w, err := strconv.ParseFloat(wStr, 64)
		if err != nil {
			return nil, fmt.Errorf("mix-shift weight %q: %w", wStr, err)
		}
		if _, dup := out[size]; dup {
			return nil, fmt.Errorf("mix-shift size %d repeated", size)
		}
		out[size] = w
	}
	return out, nil
}
