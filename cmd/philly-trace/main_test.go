package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"philly"
)

// TestRunValidation pins the flag-validation fixes: -jobs 0 and -days 0
// used to flow into the generator and surface as NaN arrival gaps; now they
// fail fast, as do unknown modes and a replay without an input file.
func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero jobs", []string{"generate", "-jobs", "0"}, "-jobs must be positive"},
		{"negative jobs", []string{"-jobs", "-5"}, "-jobs must be positive"},
		{"zero days", []string{"generate", "-jobs", "10", "-days", "0"}, "-days must be positive"},
		{"unknown mode", []string{"frobnicate"}, "unknown mode"},
		{"unknown pattern", []string{"generate", "-jobs", "10", "-pattern", "bogus"}, "bogus"},
		{"replay without input", []string{"replay"}, "requires -in"},
		{"replay missing file", []string{"replay", "-in", "no-such-trace.csv"}, "no such file"},
		{"unknown preset described", []string{"pattern", "bogus"}, "bogus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestGenerateReplayRoundTrip drives the CLI end to end: generate a small
// patterned trace to CSV, replay it back through the loader, and require
// the re-export to be byte-identical — the command-level form of the
// bit-exact round-trip the spec schema guarantees.
func TestGenerateReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	gen := filepath.Join(dir, "gen.csv")
	if err := run([]string{"generate", "-jobs", "300", "-days", "2", "-seed", "9",
		"-pattern", "diurnal", "-csv", gen}); err != nil {
		t.Fatal(err)
	}
	re := filepath.Join(dir, "re.csv")
	if err := run([]string{"replay", "-in", gen, "-seed", "9", "-csv", re}); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(gen)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(re)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("replay re-export differs from the generated trace")
	}

	// A non-identity transform must change the stream (and still load).
	tf := filepath.Join(dir, "compressed.csv")
	if err := run([]string{"replay", "-in", gen, "-seed", "9",
		"-time-compress", "2", "-csv", tf}); err != nil {
		t.Fatal(err)
	}
	c, err := os.ReadFile(tf)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) == string(c) {
		t.Fatal("time-compress transform left the trace unchanged")
	}
	if _, err := philly.LoadTrace(tf, philly.DefaultReplayOptions()); err != nil {
		t.Fatalf("transformed trace does not load back: %v", err)
	}
}

// TestParseMixShift covers the SIZE:WEIGHT list syntax.
func TestParseMixShift(t *testing.T) {
	m, err := parseMixShift("1:0.25, 8:0.75")
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[1] != 0.25 || m[8] != 0.75 {
		t.Fatalf("parseMixShift = %v", m)
	}
	for _, bad := range []string{"8", "x:1", "8:y", "8:1,8:2"} {
		if _, err := parseMixShift(bad); err == nil {
			t.Errorf("parseMixShift(%q): want error", bad)
		}
	}
}
