// Command philly-plot is the plotting hook for sweep exports: it reads the
// machine-readable JSON written by `philly-sweep -o json` (sweep.Export,
// format_version 1) and emits per-axis plot-ready artifacts — a tidy CSV
// (one row per scenario × metric, one column per axis, full aggregates)
// and/or a GitHub-flavored Markdown comparison table.
//
// Usage:
//
//	philly-sweep -axis sched.policy=philly,fifo -o json > sweep.json
//	philly-plot -in sweep.json -csv sweep.csv -md sweep.md
//
// With no output flags the CSV goes to stdout; "-" selects stdout
// explicitly for either format. -in - (the default) reads stdin, so the
// two commands pipe directly.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"philly/internal/sweep"
)

func main() {
	in := flag.String("in", "-", "sweep export JSON to read (- = stdin)")
	csvOut := flag.String("csv", "", "write the tidy per-axis CSV here (- = stdout)")
	mdOut := flag.String("md", "", "write the Markdown comparison table here (- = stdout)")
	flag.Parse()
	if *csvOut == "" && *mdOut == "" {
		*csvOut = "-"
	}

	var rd io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		rd = f
	}
	res, err := sweep.DecodeJSON(rd)
	if err != nil {
		fail(err)
	}

	if *csvOut != "" {
		if err := writeTo(*csvOut, res.WritePlotCSV); err != nil {
			fail(err)
		}
	}
	if *mdOut != "" {
		if err := writeTo(*mdOut, res.WritePlotMarkdown); err != nil {
			fail(err)
		}
	}
}

// writeTo writes via the given renderer to a path or stdout ("-").
func writeTo(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "philly-plot:", err)
	os.Exit(1)
}
