// Command philly-sweep runs a cross-product of study configurations in
// parallel and prints a per-scenario comparison table with confidence
// intervals over seed replicas.
//
// Usage:
//
//	philly-sweep [-scale small|medium|full] [-seed N] [-replicas N] [-workers N]
//	             [-shard-events] [-jobs N] [-axis name=v1,v2]... [-o table|json] [-v]
//
// Each -axis flag adds one swept dimension; the scenarios are the
// cross-product of all axes. Example — the §4.1 locality/fragmentation
// trade-off over two policies, 8 replicas each:
//
//	philly-sweep -axis sched.policy=philly,fifo -axis locality.relax=0:0,4:8,16:32 -replicas 8
//
// Results are bit-identical for any -workers value: per-run seeds derive
// only from (seed, scenario index, replica index), and intra-study
// telemetry streams only from (run seed, entity id).
//
// -workers is one shared budget for both parallelism layers: the pool runs
// one study per worker while the queue is full, and workers that go idle
// near the end pick up the remaining studies' intra-study shards (telemetry
// chunks, placement scoring) instead of sitting out — never more than
// -workers tasks in flight in total, and never an idle core while work
// remains. philly-sim/-repro's -workers is the same budget spent entirely
// within one study.
//
// -shard-events additionally runs every study on the per-VC sharded event
// engine. It is off by default here: a sweep saturates the pool with whole
// studies, so shard windows would mostly run inline anyway; turn it on for
// sweeps with fewer runs than workers. Results are bit-identical either
// way.
//
// -o json emits the machine-readable sweep.Result export (format_version 1:
// per-replica metrics, per-metric aggregates, and each scenario's applied
// configuration) for CI diffing and plotting hooks; the comparison table is
// recoverable from it via sweep.DecodeJSON.
//
// The fleet.members axis makes every scenario a federated multi-cluster
// study: each value is a "+"-separated member preset list, every other
// axis applies to every member, and each scenario reports one row per
// member plus a fleet-wide row under a trailing "member" column — so
//
//	philly-sweep -axis sched.policy=philly,fifo \
//	             -axis fleet.members=philly-small+helios-like -replicas 4
//
// compares policies per-member and fleet-wide in one table (and in the
// JSON export and philly-plot output).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"philly"
	"philly/internal/profiling"
	"philly/internal/sweep"
)

// axisFlags collects repeated -axis flags.
type axisFlags []sweep.Axis

func (a *axisFlags) String() string { return fmt.Sprintf("%d axes", len(*a)) }

func (a *axisFlags) Set(spec string) error {
	ax, err := sweep.ParseAxis(spec)
	if err != nil {
		return err
	}
	*a = append(*a, ax)
	return nil
}

func main() {
	var axes axisFlags
	scale := flag.String("scale", "small", "base config scale: small, medium or full")
	seed := flag.Uint64("seed", 1, "base seed for per-run derivation")
	replicas := flag.Int("replicas", 4, "seed replicas per scenario")
	workers := flag.Int("workers", 0, "shared worker budget across and within studies (0 = GOMAXPROCS)")
	shardEvents := flag.Bool("shard-events", false,
		"run every study on the per-VC sharded event engine (results are identical either way)")
	jobs := flag.Int("jobs", 0, "override base workload job count (0 = scale default)")
	output := flag.String("o", "table", "output format: table or json (machine-readable sweep.Result export)")
	verbose := flag.Bool("v", false, "print per-run progress")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a GC-settled heap profile to this file at exit")
	flag.Var(&axes, "axis", "axis spec name=v1,v2 (repeatable); known: "+strings.Join(sweep.KnownAxes(), ", "))
	flag.Parse()

	base, err := baseConfig(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-sweep:", err)
		os.Exit(2)
	}
	base.Seed = *seed
	if *jobs > 0 {
		base.Workload.TotalJobs = *jobs
	}

	m := sweep.Matrix{Base: base, Axes: axes}
	opts := sweep.Options{Replicas: *replicas, Workers: *workers, ShardEvents: *shardEvents}
	if *verbose {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\rphilly-sweep: %d/%d runs", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if *output != "table" && *output != "json" {
		fmt.Fprintf(os.Stderr, "philly-sweep: unknown output format %q (want table or json)\n", *output)
		os.Exit(2)
	}

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-sweep:", err)
		os.Exit(2)
	}

	start := time.Now()
	res, err := m.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-sweep:", err)
		os.Exit(1)
	}
	if *output == "json" {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "philly-sweep:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wall: %v\n", time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Print(res.RenderTable())
		fmt.Printf("wall: %v\n", time.Since(start).Round(time.Millisecond))
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "philly-sweep:", err)
		os.Exit(1)
	}
}

func baseConfig(scale string) (philly.Config, error) {
	switch scale {
	case "small":
		return philly.SmallConfig(), nil
	case "medium":
		return philly.MediumConfig(), nil
	case "full":
		return philly.DefaultConfig(), nil
	default:
		return philly.Config{}, fmt.Errorf("unknown scale %q", scale)
	}
}
