// Command philly-load is the self-measuring load harness for
// philly-serve: an open-loop generator whose arrivals follow the same
// workload.Pattern presets the simulator models its tenants with, so the
// service is profiled the way the paper profiles its cluster. Each -rps
// stage reports latency percentiles, cache-hit ratio, admission rejects
// and achieved throughput; together the stages are a saturation report.
//
// Usage:
//
//	philly-load [-target URL] [-requests N] [-rps R1,R2,...]
//	            [-pattern preset] [-tenant name] [-specs N]
//	            [-spec-scale small] [-spec-jobs N] [-seed N]
//	            [-budget N] [-queue-depth N] [-cache-entries N]
//	            [-o BENCH_serve.json] [-require-cache-hit]
//
// Without -target it starts an in-process philly-serve on a loopback
// port (configured by -budget/-queue-depth/-cache-entries) and tears it
// down after the run — the self-test mode `make serve-smoke` uses.
//
// -specs N cycles N distinct study specs across the arrivals; N smaller
// than -requests guarantees repeats, which is what exercises the result
// cache. -cache-entries -1 disables the cache: running the same stage
// with the cache off and on is the before/after ablation behind the
// committed BENCH_PR10_*.json baselines.
//
// -o writes the stages as a `go test -json` output-event stream in the
// repo's BENCH_*.json schema; `bench-compare -threshold` consumes it
// unchanged, so service-level latency regressions gate CI exactly like
// engine-level ones.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"philly/internal/serve"
)

func main() {
	target := flag.String("target", "", "philly-serve base URL; empty starts an in-process server")
	requests := flag.Int("requests", 32, "arrivals per stage")
	rpsList := flag.String("rps", "8", "offered arrival rates, one stage per comma-separated value")
	pattern := flag.String("pattern", "", "workload pattern preset modulating arrivals (empty = stationary Poisson)")
	tenant := flag.String("tenant", "", "tenant header to send (empty = default)")
	specs := flag.Int("specs", 4, "distinct study specs cycled across arrivals (repeats exercise the cache)")
	specScale := flag.String("spec-scale", "small", "scale of the generated specs")
	specJobs := flag.Int("spec-jobs", 200, "job count of the generated specs (0 = scale default)")
	seed := flag.Uint64("seed", 1, "arrival schedule seed and generated specs' base seed")
	budget := flag.Int("budget", 0, "in-process server worker budget (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 16, "in-process server per-tenant queue depth")
	cacheEntries := flag.Int("cache-entries", 256, "in-process server cache capacity (negative disables)")
	out := flag.String("o", "", "write stages as a BENCH_*.json go-test-json event stream")
	requireCacheHit := flag.Bool("require-cache-hit", false, "exit 1 unless at least one request was served from cache (smoke gate)")
	timeout := flag.Duration("timeout", 120*time.Second, "per-request submit-to-result deadline")
	flag.Parse()
	if flag.NArg() > 0 {
		fatalf("unexpected arguments: %v", flag.Args())
	}
	if *specs < 1 {
		fatalf("-specs must be >= 1")
	}

	var rates []float64
	for _, part := range strings.Split(*rpsList, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			fatalf("-rps %q: want positive numbers", part)
		}
		rates = append(rates, r)
	}
	if len(rates) == 0 {
		fatalf("-rps: want at least one rate")
	}

	base := *target
	var shutdown func()
	if base == "" {
		srv := serve.New(serve.Config{
			Budget:       *budget,
			QueueDepth:   *queueDepth,
			CacheEntries: *cacheEntries,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatalf("listen: %v", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		base = "http://" + ln.Addr().String()
		shutdown = func() {
			hs.Close()
			srv.Close()
		}
		fmt.Fprintf(os.Stderr, "philly-load: in-process server on %s (budget %d, cache %d)\n",
			base, srv.Budget(), *cacheEntries)
	}

	// Distinct specs differ only by seed: same cost profile, different
	// canonical hash — repeats within a stage are guaranteed cache hits.
	bodies := make([]serve.Spec, *specs)
	for i := range bodies {
		bodies[i] = serve.Spec{
			Scale: *specScale,
			Jobs:  *specJobs,
			Seed:  *seed + uint64(i),
		}
	}

	var lines []string
	failed := false
	cacheHits := 0
	for _, rps := range rates {
		rep, err := serve.RunLoad(serve.LoadOptions{
			BaseURL:  base,
			Tenant:   *tenant,
			Requests: *requests,
			RPS:      rps,
			Pattern:  *pattern,
			Specs:    bodies,
			Seed:     *seed,
			Timeout:  *timeout,
		})
		if err != nil {
			if shutdown != nil {
				shutdown()
			}
			fatalf("stage rps=%g: %v", rps, err)
		}
		rep.Records = nil // the report row, not the raw samples
		cacheHits += rep.CacheHits
		if rep.Errors > 0 {
			failed = true
		}
		lines = append(lines, rep.BenchLine())
		fmt.Printf("rps=%-8g requests=%-4d completed=%-4d rejected=%-3d errors=%-3d cache_hit=%5.1f%%  p50=%s p95=%s p99=%s achieved=%.2f/s\n",
			rps, rep.Requests, rep.Completed, rep.Rejected, rep.Errors, rep.CacheHitPct,
			time.Duration(rep.P50Ns), time.Duration(rep.P95Ns), time.Duration(rep.P99Ns), rep.AchievedRPS)
	}
	if shutdown != nil {
		shutdown()
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		if err := serve.WriteBenchJSON(f, lines); err != nil {
			f.Close()
			fatalf("writing %s: %v", *out, err)
		}
		if err := f.Close(); err != nil {
			fatalf("writing %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "philly-load: wrote %d stage lines to %s\n", len(lines), *out)
	}
	if *requireCacheHit && cacheHits == 0 {
		fatalf("smoke gate: no request was served from cache (want >= 1)")
	}
	if failed {
		fatalf("some requests errored; see stage report above")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "philly-load: "+format+"\n", args...)
	os.Exit(1)
}
