// Command philly-analyze computes trace-level statistics from a jobs.csv
// written by philly-sim: run-time distributions by job size, status mix,
// GPU-time shares, queueing-delay percentiles by delay cause, retry rates,
// and the failure-reason breakdown. It demonstrates that the exported trace
// carries enough signal to reproduce the paper's job-level results without
// access to the simulator's internal state.
//
// Usage:
//
//	philly-analyze -trace philly-out/jobs.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"philly/internal/failures"
	"philly/internal/stats"
	"philly/internal/trace"
)

func main() {
	path := flag.String("trace", "philly-out/jobs.csv", "path to jobs.csv written by philly-sim")
	flag.Parse()

	f, err := os.Open(*path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-analyze:", err)
		os.Exit(1)
	}
	defer f.Close()
	jobs, err := trace.ReadJobsCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "philly-analyze:", err)
		os.Exit(1)
	}
	if len(jobs) == 0 {
		fmt.Fprintln(os.Stderr, "philly-analyze: trace has no jobs")
		os.Exit(1)
	}

	fmt.Printf("trace: %d jobs\n\n", len(jobs))
	statusMix(jobs)
	runtimes(jobs)
	delays(jobs)
	retries(jobs)
	failureReasons(jobs)
}

func statusMix(jobs []trace.JobRecord) {
	counts := map[string]int{}
	gpuTime := map[string]float64{}
	total := 0.0
	for _, j := range jobs {
		counts[j.Status]++
		gpuTime[j.Status] += j.GPUMin
		total += j.GPUMin
	}
	fmt.Println("Final status (Table 6):")
	for _, s := range []string{"Passed", "Killed", "Unsuccessful"} {
		fmt.Printf("  %-13s %6d jobs (%5.1f%%)  GPU-time %5.1f%%\n",
			s, counts[s], 100*float64(counts[s])/float64(len(jobs)), 100*gpuTime[s]/total)
	}
	fmt.Println()
}

func runtimes(jobs []trace.JobRecord) {
	byBucket := map[failures.SizeBucket][]float64{}
	for _, j := range jobs {
		b := failures.SizeBucketFor(j.GPUs)
		byBucket[b] = append(byBucket[b], j.RunMin)
	}
	fmt.Println("Run times by size (Figure 2, minutes):")
	for b := failures.SizeBucket(0); b < failures.NumSizeBuckets; b++ {
		v := byBucket[b]
		if len(v) == 0 {
			continue
		}
		fmt.Printf("  %-8s n=%-6d p50=%8.1f  p90=%9.1f  p99=%10.1f\n",
			b, len(v), stats.Percentile(v, 50), stats.Percentile(v, 90), stats.Percentile(v, 99))
	}
	fmt.Println()
}

func delays(jobs []trace.JobRecord) {
	byCause := map[string][]float64{}
	for _, j := range jobs {
		byCause[j.DelayCause] = append(byCause[j.DelayCause], j.QueueDelayMin)
	}
	fmt.Println("Queueing delay by cause (Table 2, minutes):")
	for _, c := range []string{"none", "fair-share", "fragmentation"} {
		v := byCause[c]
		if len(v) == 0 {
			continue
		}
		fmt.Printf("  %-14s n=%-6d p50=%8.1f  p90=%9.1f\n",
			c, len(v), stats.Percentile(v, 50), stats.Percentile(v, 90))
	}
	fmt.Println()
}

func retries(jobs []trace.JobRecord) {
	var sum, unsucc [failures.NumSizeBuckets]float64
	var n [failures.NumSizeBuckets]int
	for _, j := range jobs {
		b := failures.SizeBucketFor(j.GPUs)
		sum[b] += float64(j.Retries)
		n[b]++
		if j.Status == "Unsuccessful" {
			unsucc[b]++
		}
	}
	fmt.Println("Retries and unsuccessful rate by size (Figure 9):")
	for b := failures.SizeBucket(0); b < failures.NumSizeBuckets; b++ {
		if n[b] == 0 {
			continue
		}
		fmt.Printf("  %-8s mean retries=%.2f  unsuccessful=%.2f\n",
			b, sum[b]/float64(n[b]), unsucc[b]/float64(n[b]))
	}
	fmt.Println()
}

func failureReasons(jobs []trace.JobRecord) {
	counts := map[string]int{}
	for _, j := range jobs {
		if j.FailureReason != "" {
			counts[j.FailureReason]++
		}
	}
	type kv struct {
		reason string
		n      int
	}
	var rows []kv
	for r, n := range counts {
		rows = append(rows, kv{r, n})
	}
	sort.Slice(rows, func(i, k int) bool {
		if rows[i].n != rows[k].n {
			return rows[i].n > rows[k].n
		}
		return rows[i].reason < rows[k].reason
	})
	fmt.Println("Failure reasons among failed jobs (Table 7, job-level):")
	for _, r := range rows {
		fmt.Printf("  %-22s %d\n", r.reason, r.n)
	}
}
