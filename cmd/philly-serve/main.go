// Command philly-serve exposes the simulator as a long-lived multi-tenant
// service: an HTTP/JSON API accepting the same study, sweep and federation
// specs the CLIs take, scheduled onto one shared worker budget with
// admission control, per-tenant weighted fairness, progress streaming, and
// a provably-exact result cache.
//
// Usage:
//
//	philly-serve [-addr :8080] [-budget N] [-queue-depth N]
//	             [-cache-entries N] [-tenants name:weight,...]
//	             [-default-weight N] [-retain-jobs N] [-trace-dir DIR]
//
// API (see internal/serve):
//
//	POST   /v1/studies             submit a spec (JSON body; 202 queued,
//	                               200 cache hit, 400 malformed,
//	                               429 overloaded + Retry-After)
//	GET    /v1/studies/{id}        status
//	GET    /v1/studies/{id}/result completed export JSON
//	GET    /v1/studies/{id}/events SSE progress (?stream=ndjson for lines)
//	DELETE /v1/studies/{id}        cancel
//	GET    /v1/stats               admission/cache/tenant counters
//	GET    /v1/healthz             liveness
//
// The tenant is the X-Philly-Tenant header (or ?tenant=); unlisted
// tenants get -default-weight. -budget is the same worker budget
// philly-sweep's -workers spends, shared by every running study: the
// admission ledger guarantees the summed leases never exceed it.
//
// Replay specs may only name relative paths inside -trace-dir (the
// working directory by default); absolute paths and ".." escapes are
// rejected. Terminal jobs stay addressable for -retain-jobs fetches
// before their IDs age out.
//
// Results are bit-deterministic in the fully-resolved spec, so a cache
// hit is byte-identical to a fresh run — see serve.CanonicalHash.
//
// SIGINT/SIGTERM drain cleanly: new submits fail with 503, queued studies
// finish canceled, running studies stop at their next scenario boundary.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"philly/internal/serve"
)

// weightFlags parses -tenants name:weight[,name:weight...].
type weightFlags map[string]int

func (w weightFlags) String() string {
	parts := make([]string, 0, len(w))
	for name, wt := range w {
		parts = append(parts, fmt.Sprintf("%s:%d", name, wt))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (w weightFlags) Set(spec string) error {
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, ":")
		if !ok {
			return fmt.Errorf("tenant weight %q: want name:weight", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return fmt.Errorf("tenant weight %q: want a positive int weight", part)
		}
		w[strings.TrimSpace(name)] = n
	}
	return nil
}

func main() {
	weights := weightFlags{}
	addr := flag.String("addr", ":8080", "listen address")
	budget := flag.Int("budget", 0, "shared worker budget for all running studies (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 16, "max queued studies per tenant before 429")
	cacheEntries := flag.Int("cache-entries", 256, "result cache capacity in studies (negative disables)")
	defaultWeight := flag.Int("default-weight", 1, "fair-share weight of tenants not listed in -tenants")
	retainJobs := flag.Int("retain-jobs", 0, "terminal jobs kept addressable before their IDs age out (0 = 1024, negative = unbounded)")
	traceDir := flag.String("trace-dir", "", "directory replay paths in submitted specs are confined to (default: working directory)")
	flag.Var(weights, "tenants", "per-tenant fair-share weights, name:weight[,name:weight...]")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "philly-serve: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	s := serve.New(serve.Config{
		Budget:        *budget,
		QueueDepth:    *queueDepth,
		CacheEntries:  *cacheEntries,
		Weights:       weights,
		DefaultWeight: *defaultWeight,
		RetainJobs:    *retainJobs,
		TraceDir:      *traceDir,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	done := make(chan error, 1)
	go func() { done <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "philly-serve: listening on %s (budget %d, queue depth %d, cache %d)\n",
		*addr, s.Budget(), *queueDepth, *cacheEntries)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "philly-serve: %v\n", err)
		s.Close()
		os.Exit(1)
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "philly-serve: %v: draining\n", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	s.Close()
}
